//! Cluster-wide protocol auditing: causal ownership timelines, online
//! invariant checking, and breach "explain" reports.
//!
//! Rocksteady's safety argument rests on a handful of protocol
//! invariants (§3): ownership flips atomically at the coordinator while
//! the source keeps serving until its prepare, version floors only
//! rise, every gathered record is replayed or superseded, and lineage
//! dependencies pin crash-recovery order. The trace and profiler layers
//! show *where time goes*; this crate continuously proves *the protocol
//! did the right thing*.
//!
//! Producers (coordinator actor, server nodes, the rebalancer, YCSB
//! clients) emit [`AuditEvent`]s through a shared [`AuditSink`] — the
//! same zero-cost-when-disarmed handle shape as `Tracer`/`Profiler`: a
//! disarmed sink is `None` and every emit is one branch, no clock
//! reads, no allocation (callers guard payload construction with
//! [`AuditSink::is_on`]). An armed sink is pure state mutation on the
//! virtual clock, so arming can never perturb the event schedule —
//! `events_processed()` and all other exports stay byte-identical.
//!
//! The online [`InvariantAuditor`] consumes each event as it is
//! emitted, reconstructing per-tablet ownership timelines and checking
//! five invariant classes (see [`invariants`]):
//!
//! 1. **single-owner** — at most one server is authoritative for any
//!    key range at any instant, *modulo* the documented dual-serving
//!    migration window (target admission → source prepare flip), which
//!    must close before the migration commits;
//! 2. **version-floor** — each master's version floor is monotone;
//! 3. **conservation** — per migration, records gathered equals records
//!    fed to replay; applied + superseded accounts for all of them
//!    (none lost, none double-counted);
//! 4. **lineage** — a lineage dependency is created before the commit
//!    that uses it, dropped exactly once, and fully dropped when a
//!    participant crashes;
//! 5. **read-your-writes** — a client that saw `WriteOk{version}` never
//!    subsequently reads an older version (or a miss) of that key.
//!
//! On top of the recorded stream sits the **explain engine**: given a
//! migration id or an SLO-breach interval it walks the causal chain
//! (rebalancer decision → admission → pull/replay pressure → outcome)
//! and renders a ranked, deterministic JSON report; the full ownership-
//! transfer history also exports as a DOT graph. All exports are
//! integer-only and byte-identical across same-seed runs.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rocksteady_common::{HashRange, KeyHash, MigrationId, Nanos, ServerId, TableId};
use rocksteady_metrics::{Counter, Registry};

/// The invariant catalog: index order is stable and shared by the
/// per-invariant counters and the metrics labels.
pub mod invariants {
    /// Single authoritative owner per key range (modulo the dual window).
    pub const SINGLE_OWNER: usize = 0;
    /// Per-master version floors only rise.
    pub const VERSION_FLOOR: usize = 1;
    /// Gathered == replayed + superseded per migration.
    pub const CONSERVATION: usize = 2;
    /// Lineage deps: created before use, dropped exactly once.
    pub const LINEAGE: usize = 3;
    /// Per-client-session read-your-writes.
    pub const READ_YOUR_WRITES: usize = 4;
    /// Stable names, indexed by the constants above.
    pub const NAMES: [&str; 5] = [
        "single-owner",
        "version-floor",
        "conservation",
        "lineage",
        "read-your-writes",
    ];
}

/// Why a lineage dependency was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The migration committed normally.
    Commit,
    /// A participant crashed; the coordinator's recovery plan dropped it.
    Crash,
}

/// How a server came to claim serving authority over a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimVia {
    /// Crash-recovery replay finished; the range reopened on this master.
    Recovery,
}

/// Why a server stopped claiming serving authority over a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseVia {
    /// The migration source executed PrepareMigration: the documented
    /// dual-serving window closes here.
    PrepareFlip,
    /// The range entered crash recovery (`Recovering` blocks clients).
    RecoveryBlock,
    /// A rejected migration dropped its provisional tablet.
    Abandon,
}

/// One audited protocol step. All payloads are plain integers/ids so
/// recording never allocates beyond the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    // ------------------------------------------------ coordinator-side --
    /// Setup: a tablet entered the coordinator map owned by `owner`.
    TabletCreated {
        /// Table the tablet belongs to.
        table: TableId,
        /// Covered hash range.
        range: HashRange,
        /// Initial owner.
        owner: ServerId,
    },
    /// Metadata-only split of the tablet containing `at` (§3).
    TabletSplit {
        /// Table being split.
        table: TableId,
        /// Split point: the old tablet becomes `[start, at)` + `[at, end]`.
        at: KeyHash,
    },
    /// The coordinator recorded a migration start: map ownership flipped
    /// atomically from `source` to `target` (§3).
    MigrationStart {
        /// Migration id.
        id: MigrationId,
        /// Table under migration.
        table: TableId,
        /// Range under migration.
        range: HashRange,
        /// The source master.
        source: ServerId,
        /// The target master (the new map owner).
        target: ServerId,
    },
    /// The coordinator recorded the migration's completion.
    MigrationCommit {
        /// Migration id.
        id: MigrationId,
        /// Table under migration.
        table: TableId,
        /// Range under migration.
        range: HashRange,
    },
    /// The coordinator rejected a `MigrationStarting` (id reuse or range
    /// overlap with an in-flight run).
    MigrationRejected {
        /// The rejected id.
        id: MigrationId,
    },
    /// A baseline migration transferred ownership in one step (§2.3).
    BaselineFlip {
        /// Table transferred.
        table: TableId,
        /// Range transferred.
        range: HashRange,
        /// The old owner.
        source: ServerId,
        /// The new owner.
        target: ServerId,
    },
    /// A lineage dependency was recorded (§3.4).
    LineageAdded {
        /// Owning migration.
        id: MigrationId,
        /// The dependent (migration source).
        source: ServerId,
        /// Whose log tail is depended upon (migration target).
        target: ServerId,
        /// First covered segment of the target's log tail.
        from_segment: u64,
    },
    /// A lineage dependency was dropped.
    LineageDropped {
        /// Owning migration.
        id: MigrationId,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// The coordinator processed a crash report for `server`. Emitted
    /// *after* the matching `LineageDropped { cause: Crash }` events so
    /// the auditor can check the dead server's deps are fully gone.
    ServerCrashed {
        /// The dead server.
        server: ServerId,
    },
    /// One recovery assignment of the crash plan.
    RecoveryPlanned {
        /// Table to recover.
        table: TableId,
        /// Range to recover.
        range: HashRange,
        /// Whose data is reconstructed.
        crashed: ServerId,
        /// The surviving master that replays and takes ownership.
        recovery_master: ServerId,
        /// Whether it merges onto an existing copy (lineage tail).
        merge: bool,
    },

    // ------------------------------------------------------ master-side --
    /// A migration target admitted run `id` and became locally
    /// authoritative for the range (§3): the dual-serving window opens.
    MigrationAdmitted {
        /// Migration id.
        id: MigrationId,
        /// Table under migration.
        table: TableId,
        /// Range under migration.
        range: HashRange,
        /// The source it will pull from.
        source: ServerId,
        /// The admitting target.
        target: ServerId,
    },
    /// A server began claiming serving authority over a range.
    NodeClaim {
        /// The claiming server.
        server: ServerId,
        /// Table.
        table: TableId,
        /// Range.
        range: HashRange,
        /// How the claim arose.
        via: ClaimVia,
    },
    /// A server stopped claiming serving authority over a range.
    NodeRelease {
        /// The releasing server.
        server: ServerId,
        /// Table.
        table: TableId,
        /// Range.
        range: HashRange,
        /// Why it released.
        via: ReleaseVia,
    },
    /// A master raised (or restated) its version floor.
    VersionFloor {
        /// The master.
        server: ServerId,
        /// The floor after the raise.
        floor: u64,
    },
    /// The target received one batch of gathered records for run `id`.
    Gathered {
        /// Migration id.
        id: MigrationId,
        /// Pull partition (`u64::MAX` for PriorityPull batches).
        partition: u64,
        /// Records in the batch.
        records: u64,
        /// Whether this was a PriorityPull response.
        priority: bool,
    },
    /// The target replayed one batch for run `id`.
    Replayed {
        /// Migration id.
        id: MigrationId,
        /// Records handed to `replay_batch`.
        received: u64,
        /// Records actually applied (the rest were version-superseded).
        applied: u64,
    },
    /// The source serviced a PriorityPull (§3.3).
    PriorityServed {
        /// The serving source.
        server: ServerId,
        /// Hashes requested.
        requested: u64,
        /// Records returned (absent hashes are known-deleted).
        records: u64,
    },
    /// The target finished run `id`: side logs committed, role flipped
    /// to owner. Carries the manager's own gather totals so the auditor
    /// can cross-check its event-accumulated counts.
    MigrationFinished {
        /// Migration id.
        id: MigrationId,
        /// The finishing target.
        target: ServerId,
        /// Records the manager counted from bulk pulls.
        pull_records: u64,
        /// Records the manager counted from priority pulls.
        priority_records: u64,
    },
    /// The target abandoned run `id` (source died, rejected, or a
    /// recovery plan superseded it).
    MigrationAbandoned {
        /// Migration id.
        id: MigrationId,
        /// The abandoning target.
        target: ServerId,
    },

    // ------------------------------------------------- rebalancer-side --
    /// The placement policy proposed a move (pre-admission).
    RebalanceProposed {
        /// Move source.
        source: ServerId,
        /// Move target.
        target: ServerId,
        /// Table.
        table: TableId,
        /// Range.
        range: HashRange,
    },
    /// Admission control admitted the move and issued `MigrateTablet`.
    RebalanceAdmitted {
        /// The assigned migration id (`>= 1 << 32`).
        id: MigrationId,
        /// Move source.
        source: ServerId,
        /// Move target.
        target: ServerId,
        /// Table.
        table: TableId,
        /// Range.
        range: HashRange,
    },
    /// The target answered the rebalancer's `MigrateTablet`.
    RebalanceOutcome {
        /// The issued migration id.
        id: MigrationId,
        /// Whether the run completed (vs. refused/abandoned).
        completed: bool,
    },

    // ------------------------------------------------------ client-side --
    /// A YCSB client saw `WriteOk { version }` for `hash`.
    ClientWrite {
        /// Client actor id.
        client: u64,
        /// Key hash written.
        hash: KeyHash,
        /// Version the server assigned.
        version: u64,
    },
    /// A YCSB client completed a read of a key it previously wrote
    /// (`version == 0` means the read missed).
    ClientRead {
        /// Client actor id.
        client: u64,
        /// Key hash read.
        hash: KeyHash,
        /// Version observed (0 = not found).
        version: u64,
    },
}

impl AuditKind {
    /// Stable label for causal-chain rendering.
    pub fn label(&self) -> &'static str {
        match self {
            AuditKind::TabletCreated { .. } => "tablet-created",
            AuditKind::TabletSplit { .. } => "tablet-split",
            AuditKind::MigrationStart { .. } => "migration-start",
            AuditKind::MigrationCommit { .. } => "migration-commit",
            AuditKind::MigrationRejected { .. } => "migration-rejected",
            AuditKind::BaselineFlip { .. } => "baseline-flip",
            AuditKind::LineageAdded { .. } => "lineage-added",
            AuditKind::LineageDropped { .. } => "lineage-dropped",
            AuditKind::ServerCrashed { .. } => "server-crashed",
            AuditKind::RecoveryPlanned { .. } => "recovery-planned",
            AuditKind::MigrationAdmitted { .. } => "migration-admitted",
            AuditKind::NodeClaim { .. } => "node-claim",
            AuditKind::NodeRelease { .. } => "node-release",
            AuditKind::VersionFloor { .. } => "version-floor",
            AuditKind::Gathered { .. } => "gathered",
            AuditKind::Replayed { .. } => "replayed",
            AuditKind::PriorityServed { .. } => "priority-served",
            AuditKind::MigrationFinished { .. } => "migration-finished",
            AuditKind::MigrationAbandoned { .. } => "migration-abandoned",
            AuditKind::RebalanceProposed { .. } => "rebalance-proposed",
            AuditKind::RebalanceAdmitted { .. } => "rebalance-admitted",
            AuditKind::RebalanceOutcome { .. } => "rebalance-outcome",
            AuditKind::ClientWrite { .. } => "client-write",
            AuditKind::ClientRead { .. } => "client-read",
        }
    }
}

/// One recorded event: a kind stamped with virtual time. The sequence
/// number is its index in the stream (emission order is deterministic).
#[derive(Debug, Clone, Copy)]
pub struct AuditEvent {
    /// Virtual time of the step.
    pub at: Nanos,
    /// Stream position.
    pub seq: u64,
    /// The step itself.
    pub kind: AuditKind,
}

/// One invariant violation, detected online at ingest time.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke (a name from [`invariants::NAMES`]).
    pub invariant: &'static str,
    /// Virtual time of the violating event.
    pub at: Nanos,
    /// Sequence number of the violating event.
    pub seq: u64,
    /// Human-readable description (integers only; deterministic).
    pub detail: String,
    /// Causal chain: sequence numbers of the events that led here, in
    /// causal order, ending with the violating event.
    pub chain: Vec<u64>,
}

/// Summary of what the auditor has seen and checked.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Events ingested.
    pub events: u64,
    /// Migration runs observed (admitted at a target).
    pub migrations_tracked: u64,
    /// Runs that committed with conservation fully verified.
    pub migrations_verified: u64,
    /// Runs abandoned (source died, rejected, superseded).
    pub migrations_abandoned: u64,
    /// Total violations across all invariants.
    pub violations: u64,
    /// Per-invariant `(name, checks_performed, violations)`.
    pub per_invariant: Vec<(&'static str, u64, u64)>,
}

// ------------------------------------------------------- auditor state --

/// One map-level ownership segment of a tablet's timeline.
#[derive(Debug, Clone, Copy)]
struct OwnerSegment {
    from: Nanos,
    owner: ServerId,
    /// "normal" | "migrating" | "baseline" | "recovering".
    state: &'static str,
}

/// Per-tablet reconstruction: map-level owner history plus the live
/// node-level serving set.
#[derive(Debug, Clone)]
struct TabletTrack {
    table: TableId,
    range: HashRange,
    opened: Nanos,
    closed: Option<Nanos>,
    segments: Vec<OwnerSegment>,
    /// Servers currently claiming serving authority (sorted).
    serving: Vec<ServerId>,
    /// Open dual-serving window: `(migration, source, opened_seq)`.
    window: Option<(MigrationId, ServerId, u64)>,
}

impl TabletTrack {
    fn push_segment(&mut self, at: Nanos, owner: ServerId, state: &'static str) {
        if let Some(last) = self.segments.last() {
            if last.owner == owner && last.state == state {
                return;
            }
        }
        self.segments.push(OwnerSegment {
            from: at,
            owner,
            state,
        });
    }
}

/// Per-migration causal + conservation bookkeeping.
#[derive(Debug, Clone)]
struct MigTrack {
    table: TableId,
    range: HashRange,
    source: ServerId,
    target: ServerId,
    /// Whether a `MigrationAdmitted` (or `MigrationStart`) filled in the
    /// endpoint fields above.
    admitted: bool,
    admitted_at: Nanos,
    ended_at: Option<Nanos>,
    /// 0 in-flight, 1 committed, 2 abandoned.
    outcome: u8,
    verified: bool,
    gathered_bulk: u64,
    gathered_prio: u64,
    pulls: u64,
    priority_pulls: u64,
    replay_batches: u64,
    replay_received: u64,
    replay_applied: u64,
    // Causal-chain anchors (event seqs).
    rebalance_seq: Option<u64>,
    admitted_seq: u64,
    prepare_seq: Option<u64>,
    started_seq: Option<u64>,
    lineage_seq: Option<u64>,
    finished_seq: Option<u64>,
    abandoned_seq: Option<u64>,
    commit_seq: Option<u64>,
    drop_seq: Option<u64>,
}

impl Default for MigTrack {
    fn default() -> Self {
        MigTrack {
            table: TableId(0),
            range: HashRange::empty(),
            source: ServerId(u32::MAX),
            target: ServerId(u32::MAX),
            admitted: false,
            admitted_at: 0,
            ended_at: None,
            outcome: 0,
            verified: false,
            gathered_bulk: 0,
            gathered_prio: 0,
            pulls: 0,
            priority_pulls: 0,
            replay_batches: 0,
            replay_received: 0,
            replay_applied: 0,
            rebalance_seq: None,
            admitted_seq: 0,
            prepare_seq: None,
            started_seq: None,
            lineage_seq: None,
            finished_seq: None,
            abandoned_seq: None,
            commit_seq: None,
            drop_seq: None,
        }
    }
}

impl MigTrack {
    /// The control-plane chain (no data-plane noise), in causal order.
    fn chain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut push = |s: Option<u64>| {
            if let Some(s) = s {
                out.push(s);
            }
        };
        push(self.rebalance_seq);
        push(Some(self.admitted_seq));
        push(self.prepare_seq);
        push(self.lineage_seq);
        push(self.started_seq);
        push(self.finished_seq);
        push(self.abandoned_seq);
        push(self.commit_seq);
        push(self.drop_seq);
        out
    }
}

/// The online checker: ingests each event as it is emitted and records
/// violations immediately, with the causal chain that led there.
#[derive(Debug, Default)]
pub struct InvariantAuditor {
    tablets: Vec<TabletTrack>,
    /// Live tablet index by exact `(table, start, end)`.
    live: HashMap<(u64, u64, u64), usize>,
    migs: HashMap<u64, MigTrack>,
    /// Live lineage deps: id -> (source, target, added_seq).
    lineage: HashMap<u64, (ServerId, ServerId, u64)>,
    /// Last floor sample per server: (floor, seq).
    floors: HashMap<u32, (u64, u64)>,
    /// Max confirmed written version per (client, hash) -> (version, seq).
    written: HashMap<(u64, u64), (u64, u64)>,
    /// Pending rebalancer admissions: migration id -> seq.
    rebalance_admits: HashMap<u64, u64>,
    checked: [u64; 5],
    violated: [u64; 5],
    violations: Vec<Violation>,
}

impl InvariantAuditor {
    fn live_idx(&self, table: TableId, range: HashRange) -> Option<usize> {
        self.live.get(&(table.0, range.start, range.end)).copied()
    }

    fn violate(&mut self, inv: usize, at: Nanos, seq: u64, detail: String, mut chain: Vec<u64>) {
        self.violated[inv] += 1;
        if chain.last() != Some(&seq) {
            chain.push(seq);
        }
        self.violations.push(Violation {
            invariant: invariants::NAMES[inv],
            at,
            seq,
            detail,
            chain,
        });
    }

    /// Enforces the serving-set cardinality rule on tablet `idx` after a
    /// mutation: more than one server is legal only inside an open dual
    /// window (and then exactly two).
    fn check_serving(&mut self, idx: usize, at: Nanos, seq: u64, extra_chain: Vec<u64>) {
        self.checked[invariants::SINGLE_OWNER] += 1;
        let t = &self.tablets[idx];
        let n = t.serving.len();
        let windowed = t.window.is_some();
        if n > 2 || (n == 2 && !windowed) {
            let servers: Vec<String> = t.serving.iter().map(|s| s.0.to_string()).collect();
            let (table, range) = (t.table, t.range);
            self.violate(
                invariants::SINGLE_OWNER,
                at,
                seq,
                format!(
                    "{} servers [{}] authoritative for table {} range [{:#x}, {:#x}] outside a dual-serving window",
                    n,
                    servers.join(" "),
                    table.0,
                    range.start,
                    range.end
                ),
                extra_chain,
            );
            // Reset to the most recent claimant so one bug does not
            // cascade into a violation per subsequent event.
            let keep = *self.tablets[idx].serving.last().expect("n > 0");
            self.tablets[idx].serving = vec![keep];
            self.tablets[idx].window = None;
        }
    }

    fn ingest(&mut self, ev: &AuditEvent) {
        let (at, seq) = (ev.at, ev.seq);
        match ev.kind {
            AuditKind::TabletCreated {
                table,
                range,
                owner,
            } => {
                let idx = self.tablets.len();
                self.tablets.push(TabletTrack {
                    table,
                    range,
                    opened: at,
                    closed: None,
                    segments: vec![OwnerSegment {
                        from: at,
                        owner,
                        state: "normal",
                    }],
                    serving: vec![owner],
                    window: None,
                });
                self.live.insert((table.0, range.start, range.end), idx);
            }
            AuditKind::TabletSplit { table, at: split } => {
                let found = self
                    .tablets
                    .iter()
                    .enumerate()
                    .find(|(i, t)| {
                        t.closed.is_none()
                            && t.table == table
                            && t.range.contains(split)
                            && t.range.start < split
                            && self.live.get(&(table.0, t.range.start, t.range.end)) == Some(i)
                    })
                    .map(|(i, _)| i);
                let Some(idx) = found else { return };
                let parent = self.tablets[idx].clone();
                self.tablets[idx].closed = Some(at);
                self.live
                    .remove(&(table.0, parent.range.start, parent.range.end));
                for range in [
                    HashRange {
                        start: parent.range.start,
                        end: split - 1,
                    },
                    HashRange {
                        start: split,
                        end: parent.range.end,
                    },
                ] {
                    let child = self.tablets.len();
                    let mut segs = Vec::new();
                    if let Some(last) = parent.segments.last() {
                        segs.push(OwnerSegment { from: at, ..*last });
                    }
                    self.tablets.push(TabletTrack {
                        table,
                        range,
                        opened: at,
                        closed: None,
                        segments: segs,
                        serving: parent.serving.clone(),
                        window: parent.window,
                    });
                    self.live.insert((table.0, range.start, range.end), child);
                }
            }
            AuditKind::MigrationAdmitted {
                id,
                table,
                range,
                source,
                target,
            } => {
                let rebalance_seq = self.rebalance_admits.get(&id.0).copied();
                self.migs.entry(id.0).or_default();
                let m = self.migs.get_mut(&id.0).expect("inserted above");
                m.table = table;
                m.range = range;
                m.source = source;
                m.target = target;
                m.admitted = true;
                m.admitted_at = at;
                m.admitted_seq = seq;
                m.rebalance_seq = rebalance_seq;
                if let Some(idx) = self.live_idx(table, range) {
                    let window_clash = self.tablets[idx].window;
                    if let Some((other, _, other_seq)) = window_clash {
                        self.violate(
                            invariants::SINGLE_OWNER,
                            at,
                            seq,
                            format!(
                                "migration {} admitted while migration {} still holds the dual-serving window on table {} range [{:#x}, {:#x}]",
                                id.0, other.0, table.0, range.start, range.end
                            ),
                            vec![other_seq],
                        );
                    }
                    let t = &mut self.tablets[idx];
                    if !t.serving.contains(&target) {
                        t.serving.push(target);
                        t.serving.sort();
                    }
                    if t.serving.len() >= 2 && t.window.is_none() {
                        t.window = Some((id, source, seq));
                    }
                    self.check_serving(idx, at, seq, vec![seq]);
                }
            }
            AuditKind::NodeRelease {
                server,
                table,
                range,
                via,
            } => {
                if let Some(idx) = self.live_idx(table, range) {
                    let t = &mut self.tablets[idx];
                    t.serving.retain(|s| *s != server);
                    if let Some((mid, src, _)) = t.window {
                        if src == server {
                            t.window = None;
                            if let Some(m) = self.migs.get_mut(&mid.0) {
                                if via == ReleaseVia::PrepareFlip {
                                    m.prepare_seq = Some(seq);
                                }
                            }
                        }
                    }
                    self.check_serving(idx, at, seq, vec![seq]);
                }
            }
            AuditKind::NodeClaim {
                server,
                table,
                range,
                via: ClaimVia::Recovery,
            } => {
                if let Some(idx) = self.live_idx(table, range) {
                    let t = &mut self.tablets[idx];
                    if !t.serving.contains(&server) {
                        t.serving.push(server);
                        t.serving.sort();
                    }
                    t.push_segment(at, server, "normal");
                    self.check_serving(idx, at, seq, vec![seq]);
                }
            }
            AuditKind::MigrationStart {
                id,
                table,
                range,
                source,
                target,
            } => {
                let m = self.migs.entry(id.0).or_default();
                m.started_seq = Some(seq);
                if !m.admitted {
                    m.table = table;
                    m.range = range;
                    m.source = source;
                    m.target = target;
                    m.admitted = true;
                    m.admitted_at = at;
                    m.admitted_seq = seq;
                }
                if let Some(idx) = self.live_idx(table, range) {
                    self.tablets[idx].push_segment(at, target, "migrating");
                }
            }
            AuditKind::MigrationRejected { .. } => {}
            AuditKind::MigrationCommit { id, table, range } => {
                let chain = self.migs.get(&id.0).map(|m| m.chain()).unwrap_or_default();
                if let Some(m) = self.migs.get_mut(&id.0) {
                    m.commit_seq = Some(seq);
                }
                // Lineage "created before use": the commit is the use.
                self.checked[invariants::LINEAGE] += 1;
                if !self.lineage.contains_key(&id.0) {
                    self.violate(
                        invariants::LINEAGE,
                        at,
                        seq,
                        format!(
                            "migration {} committed with no live lineage dependency",
                            id.0
                        ),
                        chain,
                    );
                }
                if let Some(idx) = self.live_idx(table, range) {
                    let owner = self.tablets[idx]
                        .segments
                        .last()
                        .map(|s| s.owner)
                        .unwrap_or(ServerId(0));
                    self.tablets[idx].push_segment(at, owner, "normal");
                }
            }
            AuditKind::BaselineFlip {
                table,
                range,
                source,
                target,
            } => {
                if let Some(idx) = self.live_idx(table, range) {
                    let t = &mut self.tablets[idx];
                    t.serving.retain(|s| *s != source);
                    if !t.serving.contains(&target) {
                        t.serving.push(target);
                        t.serving.sort();
                    }
                    t.push_segment(at, target, "normal");
                    self.check_serving(idx, at, seq, vec![seq]);
                }
            }
            AuditKind::LineageAdded {
                id,
                source,
                target,
                from_segment: _,
            } => {
                self.checked[invariants::LINEAGE] += 1;
                if self.lineage.contains_key(&id.0) {
                    let prior = self.lineage[&id.0].2;
                    self.violate(
                        invariants::LINEAGE,
                        at,
                        seq,
                        format!("lineage dependency for migration {} added twice", id.0),
                        vec![prior],
                    );
                }
                self.lineage.insert(id.0, (source, target, seq));
                if let Some(m) = self.migs.get_mut(&id.0) {
                    m.lineage_seq = Some(seq);
                }
            }
            AuditKind::LineageDropped { id, cause: _ } => {
                self.checked[invariants::LINEAGE] += 1;
                match self.lineage.remove(&id.0) {
                    Some(_) => {
                        if let Some(m) = self.migs.get_mut(&id.0) {
                            m.drop_seq = Some(seq);
                        }
                    }
                    None => {
                        let chain = self.migs.get(&id.0).map(|m| m.chain()).unwrap_or_default();
                        self.violate(
                            invariants::LINEAGE,
                            at,
                            seq,
                            format!(
                                "lineage dependency for migration {} dropped without being live (never created, or dropped twice)",
                                id.0
                            ),
                            chain,
                        );
                    }
                }
            }
            AuditKind::ServerCrashed { server } => {
                // Fully-dropped-on-crash: by the time the crash event
                // lands (it follows the plan's LineageDropped events), no
                // live dep may involve the dead server.
                self.checked[invariants::LINEAGE] += 1;
                let mut stale: Vec<(u64, u64)> = self
                    .lineage
                    .iter()
                    .filter(|(_, (s, t, _))| *s == server || *t == server)
                    .map(|(id, (_, _, added))| (*id, *added))
                    .collect();
                stale.sort_unstable();
                for (id, added) in stale {
                    self.violate(
                        invariants::LINEAGE,
                        at,
                        seq,
                        format!(
                            "lineage dependency for migration {} still live after crash of server {}",
                            id, server.0
                        ),
                        vec![added],
                    );
                    self.lineage.remove(&id);
                }
                // The dead server stops serving everything; windows it
                // participated in close with it.
                for idx in 0..self.tablets.len() {
                    if self.tablets[idx].closed.is_some() {
                        continue;
                    }
                    self.tablets[idx].serving.retain(|s| *s != server);
                    if let Some((mid, src, _)) = self.tablets[idx].window {
                        let target = self.migs.get(&mid.0).map(|m| m.target);
                        if src == server || target == Some(server) {
                            self.tablets[idx].window = None;
                        }
                    }
                }
            }
            AuditKind::RecoveryPlanned {
                table,
                range,
                crashed: _,
                recovery_master,
                merge: _,
            } => {
                if let Some(idx) = self.live_idx(table, range) {
                    self.tablets[idx].push_segment(at, recovery_master, "recovering");
                }
            }
            AuditKind::VersionFloor { server, floor } => {
                self.checked[invariants::VERSION_FLOOR] += 1;
                if let Some(&(prev, prev_seq)) = self.floors.get(&server.0) {
                    if floor < prev {
                        self.violate(
                            invariants::VERSION_FLOOR,
                            at,
                            seq,
                            format!(
                                "version floor on server {} regressed from {} to {}",
                                server.0, prev, floor
                            ),
                            vec![prev_seq],
                        );
                    }
                }
                self.floors.insert(server.0, (floor, seq));
            }
            AuditKind::Gathered {
                id,
                partition: _,
                records,
                priority,
            } => {
                let m = self.migs.entry(id.0).or_default();
                if priority {
                    m.gathered_prio += records;
                    m.priority_pulls += 1;
                } else {
                    m.gathered_bulk += records;
                    m.pulls += 1;
                }
            }
            AuditKind::Replayed {
                id,
                received,
                applied,
            } => {
                let m = self.migs.entry(id.0).or_default();
                m.replay_batches += 1;
                m.replay_received += received;
                m.replay_applied += applied;
            }
            AuditKind::PriorityServed { .. } => {}
            AuditKind::MigrationFinished {
                id,
                target: _,
                pull_records,
                priority_records,
            } => {
                // Conservation: everything gathered was fed to replay,
                // and the event-accumulated gather counts agree with the
                // manager's own totals.
                self.checked[invariants::CONSERVATION] += 1;
                let (detail, chain, ok, ended) = {
                    let m = self.migs.entry(id.0).or_default();
                    m.finished_seq = Some(seq);
                    m.ended_at = Some(at);
                    m.outcome = 1;
                    let gathered = m.gathered_bulk + m.gathered_prio;
                    let ok = m.gathered_bulk == pull_records
                        && m.gathered_prio == priority_records
                        && m.replay_received == gathered
                        && m.replay_applied <= m.replay_received;
                    m.verified = ok;
                    (
                        format!(
                            "migration {}: gathered {} (bulk {} vs manager {}, priority {} vs manager {}) but replay received {} applied {}",
                            id.0,
                            gathered,
                            m.gathered_bulk,
                            pull_records,
                            m.gathered_prio,
                            priority_records,
                            m.replay_received,
                            m.replay_applied
                        ),
                        m.chain(),
                        ok,
                        at,
                    )
                };
                let _ = ended;
                if !ok {
                    self.violate(invariants::CONSERVATION, at, seq, detail, chain);
                }
                // The dual window must have closed before the commit: a
                // source that never stopped serving is a split brain.
                let (range, table, chain2) = {
                    let m = &self.migs[&id.0];
                    (m.range, m.table, m.chain())
                };
                if let Some(idx) = self.live_idx(table, range) {
                    self.checked[invariants::SINGLE_OWNER] += 1;
                    let open = self.tablets[idx].window.filter(|(mid, _, _)| *mid == id);
                    if let Some((_, src, wseq)) = open {
                        let mut chain = chain2;
                        chain.push(wseq);
                        self.violate(
                            invariants::SINGLE_OWNER,
                            at,
                            seq,
                            format!(
                                "migration {} committed while source {} never released table {} range [{:#x}, {:#x}]: dual-serving window still open",
                                id.0, src.0, table.0, range.start, range.end
                            ),
                            chain,
                        );
                        let t = &mut self.tablets[idx];
                        t.window = None;
                        t.serving.retain(|s| *s != src);
                    }
                }
            }
            AuditKind::MigrationAbandoned { id, target: _ } => {
                let m = self.migs.entry(id.0).or_default();
                m.abandoned_seq = Some(seq);
                m.ended_at = Some(at);
                m.outcome = 2;
            }
            AuditKind::RebalanceProposed { .. } => {}
            AuditKind::RebalanceAdmitted { id, .. } => {
                self.rebalance_admits.insert(id.0, seq);
            }
            AuditKind::RebalanceOutcome { .. } => {}
            AuditKind::ClientWrite {
                client,
                hash,
                version,
            } => {
                let entry = self.written.entry((client, hash)).or_insert((0, seq));
                if version > entry.0 {
                    *entry = (version, seq);
                }
            }
            AuditKind::ClientRead {
                client,
                hash,
                version,
            } => {
                if let Some(&(max, wseq)) = self.written.get(&(client, hash)) {
                    self.checked[invariants::READ_YOUR_WRITES] += 1;
                    if version < max {
                        let what = if version == 0 {
                            "a miss".to_string()
                        } else {
                            format!("version {version}")
                        };
                        self.violate(
                            invariants::READ_YOUR_WRITES,
                            at,
                            seq,
                            format!(
                                "client {} read {} for hash {:#x} after its own confirmed write of version {}",
                                client, what, hash, max
                            ),
                            vec![wseq],
                        );
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------ the sink --

/// Per-invariant metrics published into the shared registry (armed
/// clusters only; see `ClusterConfig::audit`).
#[derive(Debug, Clone)]
struct AuditMetrics {
    events: Counter,
    verified: Counter,
    violations: [Counter; 5],
}

/// Everything behind an armed sink: the append-only event log, the
/// online checker, and (optionally) registered summary counters.
#[derive(Debug, Default)]
struct AuditCore {
    events: Vec<AuditEvent>,
    auditor: InvariantAuditor,
    metrics: Option<AuditMetrics>,
    /// Ring mode: when `Some(n)`, the buffer holds at most `n` events
    /// and the oldest half is discarded when it fills. Event `seq`
    /// numbers keep counting total ingested events, so chains recorded
    /// by the online checker stay stable; dropped events keep their seq
    /// in chain output but lose their detail.
    capacity: Option<usize>,
    /// Events discarded by ring compaction since arming.
    dropped: u64,
}

/// Shared handle to the audit stream. Cloning shares the buffer; a
/// disarmed sink ([`AuditSink::off`]) is `None` and every call is one
/// branch.
#[derive(Debug, Clone, Default)]
pub struct AuditSink(Option<Rc<RefCell<AuditCore>>>);

impl AuditSink {
    /// A disarmed sink: every emit is a single branch.
    pub fn off() -> Self {
        AuditSink(None)
    }

    /// An armed sink with a fresh shared buffer and checker.
    pub fn armed() -> Self {
        AuditSink(Some(Rc::new(RefCell::new(AuditCore::default()))))
    }

    /// An armed sink in **ring mode**: the event buffer holds at most
    /// `capacity` events; when it fills, the oldest half is discarded
    /// in one memmove and counted in [`AuditSink::dropped`]. The online
    /// checker keeps its full state (it folds events as they arrive),
    /// so invariant checking is unaffected — only the forensic event
    /// detail of dropped events is lost.
    pub fn with_capacity(capacity: usize) -> Self {
        AuditSink(Some(Rc::new(RefCell::new(AuditCore {
            capacity: Some(capacity.max(2)),
            ..AuditCore::default()
        }))))
    }

    /// Events discarded by ring compaction (0 when unbounded or off).
    pub fn dropped(&self) -> u64 {
        self.0.as_ref().map(|c| c.borrow().dropped).unwrap_or(0)
    }

    /// Whether the sink records. Guard payload construction with this.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Registers the summary counters (`audit_events_total`,
    /// `audit_violations_total{invariant=...}`,
    /// `audit_migrations_verified_total`) in `reg` and keeps updating
    /// them on every ingest. No-op when disarmed.
    pub fn register_metrics(&self, reg: &Registry) {
        let Some(core) = &self.0 else { return };
        let violations = std::array::from_fn(|i| {
            reg.counter(
                "audit_violations_total",
                "Protocol-invariant violations detected by the auditor",
                &[("invariant", invariants::NAMES[i].to_string())],
            )
        });
        core.borrow_mut().metrics = Some(AuditMetrics {
            events: reg.counter(
                "audit_events_total",
                "Audit events ingested by the invariant auditor",
                &[],
            ),
            verified: reg.counter(
                "audit_migrations_verified_total",
                "Migrations that committed with record conservation verified",
                &[],
            ),
            violations,
        });
    }

    /// Records one event at virtual time `at` and runs the online checks.
    /// A disarmed sink returns immediately.
    pub fn emit(&self, at: Nanos, kind: AuditKind) {
        let Some(core) = &self.0 else { return };
        let mut core = core.borrow_mut();
        if let Some(cap) = core.capacity {
            if core.events.len() >= cap {
                let evict = (cap / 2).max(1);
                core.events.drain(..evict);
                core.dropped += evict as u64;
            }
        }
        let seq = core.dropped + core.events.len() as u64;
        let ev = AuditEvent { at, seq, kind };
        core.events.push(ev);
        let before = core.auditor.violations.len();
        core.auditor.ingest(&ev);
        let verified = matches!(ev.kind, AuditKind::MigrationFinished { id, .. }
            if core.auditor.migs.get(&id.0).map(|m| m.verified) == Some(true));
        if let Some(m) = &core.metrics {
            m.events.inc();
            if verified {
                m.verified.inc();
            }
            let after = core.auditor.violations.len();
            for v in &core.auditor.violations[before..after] {
                let idx = invariants::NAMES
                    .iter()
                    .position(|n| *n == v.invariant)
                    .expect("known invariant");
                m.violations[idx].inc();
            }
        }
    }

    /// Number of events ingested so far, including any discarded by
    /// ring compaction (0 when disarmed).
    pub fn events_len(&self) -> u64 {
        self.0
            .as_ref()
            .map(|c| {
                let c = c.borrow();
                c.dropped + c.events.len() as u64
            })
            .unwrap_or(0)
    }

    /// All violations detected so far (empty when disarmed).
    pub fn violations(&self) -> Vec<Violation> {
        self.0
            .as_ref()
            .map(|c| c.borrow().auditor.violations.clone())
            .unwrap_or_default()
    }

    /// Summary of events, checks, and violations.
    pub fn report(&self) -> AuditReport {
        let Some(core) = &self.0 else {
            return AuditReport {
                per_invariant: invariants::NAMES.iter().map(|n| (*n, 0, 0)).collect(),
                ..AuditReport::default()
            };
        };
        self.report_inner(&core.borrow())
    }

    /// Runs `f` over the recorded event stream (`None` when disarmed).
    pub fn with_events<R>(&self, f: impl FnOnce(&[AuditEvent]) -> R) -> Option<R> {
        self.0.as_ref().map(|c| f(&c.borrow().events))
    }

    // ------------------------------------------------------ exporters --

    /// The full audit record as deterministic JSON (integers only;
    /// byte-identical across same-seed runs). `now` closes open timeline
    /// segments.
    pub fn export_json(&self, now: Nanos) -> String {
        let Some(core) = &self.0 else {
            return String::from("{\"schema\":\"rocksteady-audit-v1\",\"armed\":0}");
        };
        let core = core.borrow();
        let a = &core.auditor;
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"rocksteady-audit-v1\",\"armed\":1,\"now\":");
        out.push_str(&now.to_string());
        let rep = self.report_inner(&core);
        out.push_str(",\"summary\":{\"events\":");
        out.push_str(&rep.events.to_string());
        out.push_str(",\"migrations_tracked\":");
        out.push_str(&rep.migrations_tracked.to_string());
        out.push_str(",\"migrations_verified\":");
        out.push_str(&rep.migrations_verified.to_string());
        out.push_str(",\"migrations_abandoned\":");
        out.push_str(&rep.migrations_abandoned.to_string());
        out.push_str(",\"violations\":");
        out.push_str(&rep.violations.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&core.dropped.to_string());
        out.push_str("},\"invariants\":[");
        for (i, (name, checked, violated)) in rep.per_invariant.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(name);
            out.push_str("\",\"checked\":");
            out.push_str(&checked.to_string());
            out.push_str(",\"violations\":");
            out.push_str(&violated.to_string());
            out.push('}');
        }
        out.push_str("],\"migrations\":[");
        let mut ids: Vec<u64> = a.migs.keys().copied().collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let m = &a.migs[id];
            out.push_str("{\"id\":");
            out.push_str(&id.to_string());
            out.push_str(",\"table\":");
            out.push_str(&m.table.0.to_string());
            out.push_str(",\"start\":");
            out.push_str(&m.range.start.to_string());
            out.push_str(",\"end\":");
            out.push_str(&m.range.end.to_string());
            out.push_str(",\"source\":");
            out.push_str(&m.source.0.to_string());
            out.push_str(",\"target\":");
            out.push_str(&m.target.0.to_string());
            out.push_str(",\"admitted_at\":");
            out.push_str(&m.admitted_at.to_string());
            out.push_str(",\"ended_at\":");
            out.push_str(&m.ended_at.unwrap_or(0).to_string());
            out.push_str(",\"outcome\":\"");
            out.push_str(match m.outcome {
                1 => "committed",
                2 => "abandoned",
                _ => "in-flight",
            });
            out.push_str("\",\"origin\":\"");
            out.push_str(if m.rebalance_seq.is_some() {
                "rebalancer"
            } else {
                "scripted"
            });
            out.push_str("\",\"gathered\":");
            out.push_str(&(m.gathered_bulk + m.gathered_prio).to_string());
            out.push_str(",\"replay_received\":");
            out.push_str(&m.replay_received.to_string());
            out.push_str(",\"replay_applied\":");
            out.push_str(&m.replay_applied.to_string());
            out.push_str(",\"superseded\":");
            out.push_str(
                &m.replay_received
                    .saturating_sub(m.replay_applied)
                    .to_string(),
            );
            out.push_str(",\"verified\":");
            out.push_str(if m.verified { "1" } else { "0" });
            out.push('}');
        }
        out.push_str("],\"timeline\":[");
        let mut order: Vec<usize> = (0..a.tablets.len()).collect();
        order.sort_by_key(|i| {
            let t = &a.tablets[*i];
            (t.table.0, t.range.start, t.opened, t.range.end)
        });
        for (i, idx) in order.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let t = &a.tablets[*idx];
            out.push_str("{\"table\":");
            out.push_str(&t.table.0.to_string());
            out.push_str(",\"start\":");
            out.push_str(&t.range.start.to_string());
            out.push_str(",\"end\":");
            out.push_str(&t.range.end.to_string());
            out.push_str(",\"opened\":");
            out.push_str(&t.opened.to_string());
            out.push_str(",\"closed\":");
            out.push_str(&t.closed.unwrap_or(now).to_string());
            out.push_str(",\"segments\":[");
            for (j, s) in t.segments.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let until = t
                    .segments
                    .get(j + 1)
                    .map(|n| n.from)
                    .or(t.closed)
                    .unwrap_or(now);
                out.push_str("{\"from\":");
                out.push_str(&s.from.to_string());
                out.push_str(",\"to\":");
                out.push_str(&until.to_string());
                out.push_str(",\"owner\":");
                out.push_str(&s.owner.0.to_string());
                out.push_str(",\"state\":\"");
                out.push_str(s.state);
                out.push_str("\"}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"violations\":[");
        for (i, v) in a.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&self.violation_json(&core, v));
        }
        out.push_str("]}");
        out
    }

    fn report_inner(&self, core: &AuditCore) -> AuditReport {
        let a = &core.auditor;
        let mut tracked = 0;
        let mut verified = 0;
        let mut abandoned = 0;
        for m in a.migs.values() {
            tracked += 1;
            if m.outcome == 1 && m.verified {
                verified += 1;
            }
            if m.outcome == 2 {
                abandoned += 1;
            }
        }
        AuditReport {
            events: core.dropped + core.events.len() as u64,
            migrations_tracked: tracked,
            migrations_verified: verified,
            migrations_abandoned: abandoned,
            violations: a.violations.len() as u64,
            per_invariant: invariants::NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| (*n, a.checked[i], a.violated[i]))
                .collect(),
        }
    }

    fn chain_json(&self, core: &AuditCore, chain: &[u64]) -> String {
        let mut out = String::from("[");
        for (i, seq) in chain.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"seq\":");
            out.push_str(&seq.to_string());
            // Seq numbers count total ingested events; the buffer holds
            // the suffix starting at `dropped` when in ring mode.
            if let Some(ev) = seq
                .checked_sub(core.dropped)
                .and_then(|i| core.events.get(i as usize))
            {
                out.push_str(",\"at\":");
                out.push_str(&ev.at.to_string());
                out.push_str(",\"event\":\"");
                out.push_str(ev.kind.label());
                out.push('"');
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    fn violation_json(&self, core: &AuditCore, v: &Violation) -> String {
        let mut out = String::from("{\"invariant\":\"");
        out.push_str(v.invariant);
        out.push_str("\",\"at\":");
        out.push_str(&v.at.to_string());
        out.push_str(",\"seq\":");
        out.push_str(&v.seq.to_string());
        out.push_str(",\"detail\":\"");
        out.push_str(&v.detail);
        out.push_str("\",\"chain\":");
        out.push_str(&self.chain_json(core, &v.chain));
        out.push('}');
        out
    }

    /// The ownership-transfer history as a DOT digraph: one node per
    /// server, one edge per transfer (migration start, baseline flip, or
    /// crash-recovery reassignment). Empty graph when disarmed.
    pub fn export_dot(&self) -> String {
        let mut out = String::from("digraph ownership {\n  rankdir=LR;\n");
        let Some(core) = &self.0 else {
            out.push_str("}\n");
            return out;
        };
        let core = core.borrow();
        let mut servers: Vec<u32> = Vec::new();
        let mut edges: Vec<String> = Vec::new();
        let note = |servers: &mut Vec<u32>, s: ServerId| {
            if !servers.contains(&s.0) {
                servers.push(s.0);
            }
        };
        for ev in &core.events {
            match ev.kind {
                AuditKind::TabletCreated { owner, .. } => note(&mut servers, owner),
                AuditKind::MigrationStart {
                    id,
                    table,
                    range,
                    source,
                    target,
                } => {
                    note(&mut servers, source);
                    note(&mut servers, target);
                    edges.push(format!(
                        "  \"s{}\" -> \"s{}\" [label=\"m{} t{} [{:#x},{:#x}] @{}\"];\n",
                        source.0, target.0, id.0, table.0, range.start, range.end, ev.at
                    ));
                }
                AuditKind::BaselineFlip {
                    table,
                    range,
                    source,
                    target,
                } => {
                    note(&mut servers, source);
                    note(&mut servers, target);
                    edges.push(format!(
                        "  \"s{}\" -> \"s{}\" [label=\"baseline t{} [{:#x},{:#x}] @{}\" style=dashed];\n",
                        source.0, target.0, table.0, range.start, range.end, ev.at
                    ));
                }
                AuditKind::RecoveryPlanned {
                    table,
                    range,
                    crashed,
                    recovery_master,
                    ..
                } => {
                    note(&mut servers, crashed);
                    note(&mut servers, recovery_master);
                    edges.push(format!(
                        "  \"s{}\" -> \"s{}\" [label=\"recovery t{} [{:#x},{:#x}] @{}\" style=dotted];\n",
                        crashed.0, recovery_master.0, table.0, range.start, range.end, ev.at
                    ));
                }
                _ => {}
            }
        }
        servers.sort_unstable();
        for s in servers {
            out.push_str(&format!("  \"s{s}\";\n"));
        }
        for e in edges {
            out.push_str(&e);
        }
        out.push_str("}\n");
        out
    }

    // -------------------------------------------------- explain engine --

    /// Walks migration `id`'s causal chain — rebalancer decision (if
    /// any), admission, prepare flip, lineage, registration, pull/replay
    /// pressure, and outcome — as deterministic JSON. `None` when the
    /// sink is disarmed or the id was never seen.
    pub fn explain_migration(&self, id: MigrationId) -> Option<String> {
        let core = self.0.as_ref()?.borrow();
        let m = core.auditor.migs.get(&id.0)?;
        let mut out = String::from("{\"kind\":\"migration\",\"id\":");
        out.push_str(&id.0.to_string());
        out.push_str(",\"outcome\":\"");
        out.push_str(match m.outcome {
            1 => "committed",
            2 => "abandoned",
            _ => "in-flight",
        });
        out.push_str("\",\"origin\":\"");
        out.push_str(if m.rebalance_seq.is_some() {
            "rebalancer"
        } else {
            "scripted"
        });
        out.push_str("\",\"verified\":");
        out.push_str(if m.verified { "1" } else { "0" });
        out.push_str(",\"source\":");
        out.push_str(&m.source.0.to_string());
        out.push_str(",\"target\":");
        out.push_str(&m.target.0.to_string());
        out.push_str(",\"chain\":");
        out.push_str(&self.chain_json(&core, &m.chain()));
        out.push_str(",\"pressure\":{\"pulls\":");
        out.push_str(&m.pulls.to_string());
        out.push_str(",\"pull_records\":");
        out.push_str(&m.gathered_bulk.to_string());
        out.push_str(",\"priority_pulls\":");
        out.push_str(&m.priority_pulls.to_string());
        out.push_str(",\"priority_records\":");
        out.push_str(&m.gathered_prio.to_string());
        out.push_str(",\"replay_batches\":");
        out.push_str(&m.replay_batches.to_string());
        out.push_str(",\"replay_applied\":");
        out.push_str(&m.replay_applied.to_string());
        out.push_str(",\"superseded\":");
        out.push_str(
            &m.replay_received
                .saturating_sub(m.replay_applied)
                .to_string(),
        );
        out.push_str("}}");
        Some(out)
    }

    /// Ranks the causes active during an SLO-breach interval `[from,
    /// to]`: migrations whose run overlapped the window (scored by
    /// overlap duration and replay pressure inside it, with their full
    /// causal chain back to the rebalancer decision that admitted them)
    /// and server crashes. Deterministic JSON; `None` when disarmed or
    /// when no audited cause overlapped the window at all.
    pub fn explain_slo_breach(&self, from: Nanos, to: Nanos) -> Option<String> {
        let core = self.0.as_ref()?.borrow();
        let a = &core.auditor;
        // (score desc, seq asc) ranking; all integer math.
        let mut causes: Vec<(u64, u64, String)> = Vec::new();
        let mut ids: Vec<u64> = a.migs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let m = &a.migs[&id];
            let end = m.ended_at.unwrap_or(to);
            let begin = m.admitted_at;
            let overlap = end.min(to).saturating_sub(begin.max(from));
            if overlap == 0 || begin > to || end < from {
                continue;
            }
            let mut replayed_in_window = 0u64;
            for ev in &core.events {
                if ev.at < from || ev.at > to {
                    continue;
                }
                if let AuditKind::Replayed {
                    id: rid, received, ..
                } = ev.kind
                {
                    if rid.0 == id {
                        replayed_in_window += received;
                    }
                }
            }
            // Replay pressure dominates; overlap breaks ties in µs.
            let score = replayed_in_window * 1_000 + overlap / 1_000;
            let mut j = String::from("{\"cause\":\"migration\",\"id\":");
            j.push_str(&id.to_string());
            j.push_str(",\"origin\":\"");
            j.push_str(if m.rebalance_seq.is_some() {
                "rebalancer"
            } else {
                "scripted"
            });
            j.push_str("\",\"overlap_ns\":");
            j.push_str(&overlap.to_string());
            j.push_str(",\"replayed_in_window\":");
            j.push_str(&replayed_in_window.to_string());
            j.push_str(",\"score\":");
            j.push_str(&score.to_string());
            j.push_str(",\"chain\":");
            j.push_str(&self.chain_json(&core, &m.chain()));
            j.push('}');
            causes.push((score, m.admitted_seq, j));
        }
        for ev in &core.events {
            if let AuditKind::ServerCrashed { server } = ev.kind {
                // A crash shortly before or inside the window dominates
                // any migration-pressure explanation.
                let margin = to.saturating_sub(from);
                if ev.at >= from.saturating_sub(margin) && ev.at <= to {
                    let score = u64::MAX / 2;
                    let mut j = String::from("{\"cause\":\"crash\",\"server\":");
                    j.push_str(&server.0.to_string());
                    j.push_str(",\"at\":");
                    j.push_str(&ev.at.to_string());
                    j.push_str(",\"score\":");
                    j.push_str(&score.to_string());
                    j.push_str(",\"chain\":");
                    j.push_str(&self.chain_json(&core, &[ev.seq]));
                    j.push('}');
                    causes.push((score, ev.seq, j));
                }
            }
        }
        if causes.is_empty() {
            return None;
        }
        causes.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        let mut out = String::from("{\"kind\":\"slo-breach\",\"from\":");
        out.push_str(&from.to_string());
        out.push_str(",\"to\":");
        out.push_str(&to.to_string());
        out.push_str(",\"causes\":[");
        for (i, (_, _, j)) in causes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rank\":");
            out.push_str(&(i + 1).to_string());
            out.push(',');
            out.push_str(&j[1..]);
        }
        out.push_str("]}");
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);
    const FULL: HashRange = HashRange {
        start: 0,
        end: u64::MAX,
    };
    const M: MigrationId = MigrationId(7);
    const S0: ServerId = ServerId(0);
    const S1: ServerId = ServerId(1);
    const S2: ServerId = ServerId(2);

    fn clean_migration(sink: &AuditSink) {
        sink.emit(
            0,
            AuditKind::TabletCreated {
                table: T,
                range: FULL,
                owner: S0,
            },
        );
        sink.emit(
            10,
            AuditKind::MigrationAdmitted {
                id: M,
                table: T,
                range: FULL,
                source: S0,
                target: S1,
            },
        );
        sink.emit(
            20,
            AuditKind::NodeRelease {
                server: S0,
                table: T,
                range: FULL,
                via: ReleaseVia::PrepareFlip,
            },
        );
        sink.emit(
            25,
            AuditKind::LineageAdded {
                id: M,
                source: S0,
                target: S1,
                from_segment: 3,
            },
        );
        sink.emit(
            30,
            AuditKind::MigrationStart {
                id: M,
                table: T,
                range: FULL,
                source: S0,
                target: S1,
            },
        );
        sink.emit(
            40,
            AuditKind::Gathered {
                id: M,
                partition: 0,
                records: 90,
                priority: false,
            },
        );
        sink.emit(
            41,
            AuditKind::Gathered {
                id: M,
                partition: u64::MAX,
                records: 10,
                priority: true,
            },
        );
        sink.emit(
            50,
            AuditKind::Replayed {
                id: M,
                received: 10,
                applied: 10,
            },
        );
        sink.emit(
            55,
            AuditKind::Replayed {
                id: M,
                received: 90,
                applied: 85,
            },
        );
        sink.emit(
            60,
            AuditKind::MigrationFinished {
                id: M,
                target: S1,
                pull_records: 90,
                priority_records: 10,
            },
        );
        sink.emit(
            70,
            AuditKind::MigrationCommit {
                id: M,
                table: T,
                range: FULL,
            },
        );
        sink.emit(
            70,
            AuditKind::LineageDropped {
                id: M,
                cause: DropCause::Commit,
            },
        );
    }

    #[test]
    fn clean_run_verifies_with_zero_violations() {
        let sink = AuditSink::armed();
        clean_migration(&sink);
        let rep = sink.report();
        assert_eq!(rep.violations, 0, "{:?}", sink.violations());
        assert_eq!(rep.migrations_verified, 1);
        assert_eq!(rep.migrations_tracked, 1);
        for (name, checked, violated) in &rep.per_invariant {
            assert_eq!(*violated, 0, "{name}");
            if *name != "version-floor" && *name != "read-your-writes" {
                assert!(*checked > 0, "{name} never checked");
            }
        }
    }

    #[test]
    fn ring_mode_bounds_buffer_but_keeps_checker_state() {
        let sink = AuditSink::with_capacity(4);
        clean_migration(&sink);
        assert!(sink.dropped() > 0, "ring never wrapped");
        sink.with_events(|e| assert!(e.len() <= 4)).unwrap();
        // Total-ingested accounting survives compaction...
        let unbounded = AuditSink::armed();
        clean_migration(&unbounded);
        assert_eq!(sink.events_len(), unbounded.events_len());
        // ...and so does the online checker: the migration still
        // verifies even though the early events were discarded.
        let rep = sink.report();
        assert_eq!(rep.violations, 0, "{:?}", sink.violations());
        assert_eq!(rep.migrations_verified, 1);
        // Seq numbers in the surviving suffix line up with the drop
        // offset, and the export declares the drops.
        sink.with_events(|e| {
            for (i, ev) in e.iter().enumerate() {
                assert_eq!(ev.seq, sink.dropped() + i as u64);
            }
        })
        .unwrap();
        let json = sink.export_json(100);
        assert!(
            json.contains(&format!("\"dropped\":{}", sink.dropped())),
            "{json}"
        );
    }

    #[test]
    fn chain_json_tolerates_dropped_prefix() {
        // A violation whose chain references dropped events must still
        // export (seq present, detail omitted).
        let sink = AuditSink::with_capacity(2);
        clean_migration(&sink);
        // Fabricate a chain spanning dropped and surviving seqs via the
        // explain path: exporting the full JSON exercises chain_json on
        // every migration chain.
        let json = sink.export_json(100);
        assert!(json.contains("\"schema\":\"rocksteady-audit-v1\""));
        assert!(json.contains("\"armed\":1"));
    }

    #[test]
    fn disarmed_sink_records_nothing() {
        let sink = AuditSink::off();
        clean_migration(&sink);
        assert!(!sink.is_on());
        assert_eq!(sink.events_len(), 0);
        assert_eq!(sink.report().violations, 0);
        assert!(sink.explain_migration(M).is_none());
    }

    #[test]
    fn single_owner_violation_when_source_never_flips() {
        let sink = AuditSink::armed();
        sink.emit(
            0,
            AuditKind::TabletCreated {
                table: T,
                range: FULL,
                owner: S0,
            },
        );
        sink.emit(
            10,
            AuditKind::MigrationAdmitted {
                id: M,
                table: T,
                range: FULL,
                source: S0,
                target: S1,
            },
        );
        // No PrepareFlip release: the dual window never closes.
        sink.emit(
            60,
            AuditKind::MigrationFinished {
                id: M,
                target: S1,
                pull_records: 0,
                priority_records: 0,
            },
        );
        let v = sink.violations();
        assert!(
            v.iter().any(|v| v.invariant == "single-owner"),
            "no single-owner violation: {v:?}"
        );
        let so = v.iter().find(|v| v.invariant == "single-owner").unwrap();
        assert!(
            so.chain.len() >= 2,
            "causal chain too short: {:?}",
            so.chain
        );
    }

    #[test]
    fn single_owner_violation_on_third_claimant() {
        let sink = AuditSink::armed();
        sink.emit(
            0,
            AuditKind::TabletCreated {
                table: T,
                range: FULL,
                owner: S0,
            },
        );
        sink.emit(
            10,
            AuditKind::MigrationAdmitted {
                id: M,
                table: T,
                range: FULL,
                source: S0,
                target: S1,
            },
        );
        sink.emit(
            15,
            AuditKind::NodeClaim {
                server: S2,
                table: T,
                range: FULL,
                via: ClaimVia::Recovery,
            },
        );
        assert!(sink
            .violations()
            .iter()
            .any(|v| v.invariant == "single-owner"));
    }

    #[test]
    fn version_floor_regression_fires() {
        let sink = AuditSink::armed();
        sink.emit(
            1,
            AuditKind::VersionFloor {
                server: S0,
                floor: 100,
            },
        );
        sink.emit(
            2,
            AuditKind::VersionFloor {
                server: S0,
                floor: 100,
            },
        );
        sink.emit(
            3,
            AuditKind::VersionFloor {
                server: S1,
                floor: 5,
            },
        );
        assert_eq!(sink.report().violations, 0);
        sink.emit(
            4,
            AuditKind::VersionFloor {
                server: S0,
                floor: 99,
            },
        );
        let v = sink.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "version-floor");
        assert_eq!(v[0].chain, vec![1, 3]);
    }

    #[test]
    fn conservation_violation_on_lost_records() {
        let sink = AuditSink::armed();
        sink.emit(
            0,
            AuditKind::TabletCreated {
                table: T,
                range: FULL,
                owner: S0,
            },
        );
        sink.emit(
            10,
            AuditKind::MigrationAdmitted {
                id: M,
                table: T,
                range: FULL,
                source: S0,
                target: S1,
            },
        );
        sink.emit(
            20,
            AuditKind::NodeRelease {
                server: S0,
                table: T,
                range: FULL,
                via: ReleaseVia::PrepareFlip,
            },
        );
        sink.emit(
            40,
            AuditKind::Gathered {
                id: M,
                partition: 0,
                records: 100,
                priority: false,
            },
        );
        sink.emit(
            50,
            AuditKind::Replayed {
                id: M,
                received: 90,
                applied: 90,
            },
        );
        sink.emit(
            60,
            AuditKind::MigrationFinished {
                id: M,
                target: S1,
                pull_records: 100,
                priority_records: 0,
            },
        );
        let v = sink.violations();
        assert!(v.iter().any(|v| v.invariant == "conservation"), "{v:?}");
        assert_eq!(sink.report().migrations_verified, 0);
    }

    #[test]
    fn lineage_lifecycle_violations_fire() {
        let sink = AuditSink::armed();
        // Dropped before created.
        sink.emit(
            5,
            AuditKind::LineageDropped {
                id: M,
                cause: DropCause::Commit,
            },
        );
        // Created, then still live at the owner's crash.
        sink.emit(
            10,
            AuditKind::LineageAdded {
                id: MigrationId(8),
                source: S0,
                target: S1,
                from_segment: 0,
            },
        );
        sink.emit(20, AuditKind::ServerCrashed { server: S1 });
        let v = sink.violations();
        assert_eq!(v.iter().filter(|v| v.invariant == "lineage").count(), 2);
        // Crash processing removed the stale dep: a later crash is clean.
        sink.emit(30, AuditKind::ServerCrashed { server: S0 });
        assert_eq!(sink.violations().len(), 2);
    }

    #[test]
    fn read_your_writes_violation_fires() {
        let sink = AuditSink::armed();
        sink.emit(
            1,
            AuditKind::ClientWrite {
                client: 9,
                hash: 0xabc,
                version: 40,
            },
        );
        sink.emit(
            2,
            AuditKind::ClientRead {
                client: 9,
                hash: 0xabc,
                version: 40,
            },
        );
        sink.emit(
            3,
            AuditKind::ClientRead {
                client: 9,
                hash: 0xdef,
                version: 1,
            },
        );
        assert_eq!(sink.report().violations, 0);
        sink.emit(
            4,
            AuditKind::ClientRead {
                client: 9,
                hash: 0xabc,
                version: 39,
            },
        );
        sink.emit(
            5,
            AuditKind::ClientRead {
                client: 9,
                hash: 0xabc,
                version: 0,
            },
        );
        let v = sink.violations();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.invariant == "read-your-writes"));
        assert_eq!(v[0].chain, vec![0, 3]);
    }

    #[test]
    fn explain_migration_walks_the_chain() {
        let sink = AuditSink::armed();
        clean_migration(&sink);
        let j = sink.explain_migration(M).unwrap();
        assert!(j.contains("\"outcome\":\"committed\""));
        assert!(j.contains("\"verified\":1"));
        assert!(j.contains("migration-admitted"));
        assert!(j.contains("migration-commit"));
        assert!(j.contains("\"pull_records\":90"));
        assert!(sink.explain_migration(MigrationId(999)).is_none());
    }

    #[test]
    fn explain_breach_ranks_crash_over_migration() {
        let sink = AuditSink::armed();
        clean_migration(&sink);
        sink.emit(45, AuditKind::ServerCrashed { server: S2 });
        let j = sink.explain_slo_breach(35, 65).unwrap();
        let crash = j.find("\"cause\":\"crash\"").unwrap();
        let mig = j.find("\"cause\":\"migration\"").unwrap();
        assert!(crash < mig, "crash should rank first: {j}");
        assert!(j.contains("\"rank\":1"));
    }

    #[test]
    fn exports_are_deterministic_and_structured() {
        let build = || {
            let sink = AuditSink::armed();
            clean_migration(&sink);
            (sink.export_json(100), sink.export_dot())
        };
        let (j1, d1) = build();
        let (j2, d2) = build();
        assert_eq!(j1, j2);
        assert_eq!(d1, d2);
        assert!(j1.starts_with("{\"schema\":\"rocksteady-audit-v1\""));
        assert!(j1.contains("\"violations\":[]"));
        assert!(j1.contains("\"timeline\":["));
        assert!(d1.contains("\"s0\" -> \"s1\""));
    }

    #[test]
    fn split_propagates_timeline_state() {
        let sink = AuditSink::armed();
        sink.emit(
            0,
            AuditKind::TabletCreated {
                table: T,
                range: FULL,
                owner: S0,
            },
        );
        let mid = u64::MAX / 2 + 1;
        sink.emit(5, AuditKind::TabletSplit { table: T, at: mid });
        let upper = HashRange {
            start: mid,
            end: u64::MAX,
        };
        sink.emit(
            10,
            AuditKind::MigrationAdmitted {
                id: M,
                table: T,
                range: upper,
                source: S0,
                target: S1,
            },
        );
        sink.emit(
            20,
            AuditKind::NodeRelease {
                server: S0,
                table: T,
                range: upper,
                via: ReleaseVia::PrepareFlip,
            },
        );
        sink.emit(
            60,
            AuditKind::MigrationFinished {
                id: M,
                target: S1,
                pull_records: 0,
                priority_records: 0,
            },
        );
        assert_eq!(sink.report().violations, 0, "{:?}", sink.violations());
        let json = sink.export_json(100);
        // Three timeline entries: the parent (closed) and two children.
        assert_eq!(json.matches("\"opened\":").count(), 3);
    }

    #[test]
    fn metrics_counters_track_the_verdict() {
        let reg = Registry::new();
        let sink = AuditSink::armed();
        sink.register_metrics(&reg);
        clean_migration(&sink);
        sink.emit(
            80,
            AuditKind::VersionFloor {
                server: S0,
                floor: 10,
            },
        );
        sink.emit(
            81,
            AuditKind::VersionFloor {
                server: S0,
                floor: 9,
            },
        );
        let json = reg.snapshot(100).to_json();
        assert!(json.contains("audit_events_total"));
        assert!(json.contains("audit_migrations_verified_total"));
        assert!(json.contains("audit_violations_total"));
        let prom = reg.snapshot(100).to_prometheus();
        assert!(prom.contains("audit_violations_total{invariant=\"version-floor\"} 1"));
        assert!(prom.contains("audit_migrations_verified_total 1"));
    }
}
