//! The master's primary-key hash table.
//!
//! RAMCloud's only index over its in-memory log is a hash table mapping
//! 64-bit key hashes to log references (§2.3, Figure 6). Rocksteady's
//! migration protocol is built around its structure:
//!
//! - Bucket placement uses the *high* bits of the key hash, so a
//!   contiguous region of key-hash space is a contiguous run of buckets.
//!   This is what lets the target partition the source's key-hash space
//!   and run parallel Pulls over **disjoint regions of the hash table**
//!   with no synchronization between them (§3.1.1, Figure 7).
//! - Pulls resume from a [`Cursor`] — a bucket index — so the source
//!   keeps *no* migration state (§3): the cursor travels in the RPC.
//! - Lookups may probe several entries per bucket (hash collisions are
//!   resolved by comparing the full key stored in the log), and the
//!   number of probes is reported to the caller so the simulator can
//!   charge the cache-miss cost §4.5 measures.
//!
//! The table is striped-locked and thread-safe; buckets within one stripe
//! share a lock, and stripes cover contiguous bucket ranges so disjoint
//! hash-space partitions touch disjoint locks.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;
use rocksteady_common::{KeyHash, TableId};
use rocksteady_logstore::LogRef;

pub use rocksteady_common::range::{HashRange, ScanCursor as Cursor};

/// One entry: a key (identified by table + hash) and where it lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Owning table.
    pub table: TableId,
    /// Full 64-bit primary-key hash.
    pub hash: KeyHash,
    /// Location of the current version of the object in the log.
    pub log_ref: LogRef,
}

/// Outcome of an [`HashTable::upsert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upsert {
    /// A new entry was created.
    Inserted,
    /// An existing entry was replaced; holds the prior log reference.
    Replaced(LogRef),
}

/// The result of an operation plus how many slots were examined, so the
/// simulator can charge probe costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probed<T> {
    /// Operation result.
    pub value: T,
    /// Number of slots examined.
    pub probes: u32,
}

struct Stripe {
    buckets: RwLock<Vec<Vec<Slot>>>,
}

/// The hash table itself.
pub struct HashTable {
    stripes: Vec<Stripe>,
    buckets_per_stripe: usize,
    bucket_count: u64,
    /// `64 - log2(bucket_count)`; bucket index = `hash >> shift`.
    shift: u32,
    len: AtomicUsize,
}

impl HashTable {
    /// Creates a table with at least `min_buckets` buckets (rounded up to
    /// a power of two) spread over at most `max_stripes` lock stripes.
    pub fn new(min_buckets: usize, max_stripes: usize) -> Self {
        let bucket_count = min_buckets.next_power_of_two().max(2) as u64;
        let stripe_count = max_stripes
            .next_power_of_two()
            .clamp(1, bucket_count as usize);
        let buckets_per_stripe = (bucket_count as usize) / stripe_count;
        let stripes = (0..stripe_count)
            .map(|_| Stripe {
                buckets: RwLock::new(vec![Vec::new(); buckets_per_stripe]),
            })
            .collect();
        HashTable {
            stripes,
            buckets_per_stripe,
            bucket_count,
            shift: 64 - bucket_count.trailing_zeros(),
            len: AtomicUsize::new(0),
        }
    }

    /// Total bucket count (a power of two).
    pub fn bucket_count(&self) -> u64 {
        self.bucket_count
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bucket index for a hash: the *high* bits, so hash-space order is
    /// bucket order.
    pub fn bucket_of(&self, hash: KeyHash) -> u64 {
        hash >> self.shift
    }

    fn locate(&self, bucket: u64) -> (&Stripe, usize) {
        let idx = bucket as usize;
        (
            &self.stripes[idx / self.buckets_per_stripe],
            idx % self.buckets_per_stripe,
        )
    }

    /// Looks up the reference for `(table, hash)`.
    ///
    /// `is_match` disambiguates 64-bit hash collisions by checking the
    /// full key in the log; it receives each candidate's reference.
    pub fn lookup(
        &self,
        table: TableId,
        hash: KeyHash,
        mut is_match: impl FnMut(LogRef) -> bool,
    ) -> Probed<Option<LogRef>> {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let buckets = stripe.buckets.read();
        let mut probes = 0;
        for slot in &buckets[b] {
            probes += 1;
            if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                return Probed {
                    value: Some(slot.log_ref),
                    probes,
                };
            }
        }
        Probed {
            value: None,
            probes,
        }
    }

    /// Inserts or replaces the entry for `(table, hash)`.
    ///
    /// `is_match` identifies which colliding entry (if any) represents the
    /// same key; when it returns true the slot is repointed at `new_ref`
    /// and the old reference is returned.
    pub fn upsert(
        &self,
        table: TableId,
        hash: KeyHash,
        new_ref: LogRef,
        mut is_match: impl FnMut(LogRef) -> bool,
    ) -> Probed<Upsert> {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let mut buckets = stripe.buckets.write();
        let mut probes = 0;
        for slot in &mut buckets[b] {
            probes += 1;
            if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                let old = slot.log_ref;
                slot.log_ref = new_ref;
                return Probed {
                    value: Upsert::Replaced(old),
                    probes,
                };
            }
        }
        buckets[b].push(Slot {
            table,
            hash,
            log_ref: new_ref,
        });
        self.len.fetch_add(1, Ordering::Relaxed);
        Probed {
            value: Upsert::Inserted,
            probes: probes + 1,
        }
    }

    /// Removes the entry for `(table, hash)` whose reference satisfies
    /// `is_match`; returns the removed reference.
    pub fn remove(
        &self,
        table: TableId,
        hash: KeyHash,
        mut is_match: impl FnMut(LogRef) -> bool,
    ) -> Probed<Option<LogRef>> {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let mut buckets = stripe.buckets.write();
        let mut probes = 0;
        let bucket = &mut buckets[b];
        for i in 0..bucket.len() {
            probes += 1;
            let slot = bucket[i];
            if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                bucket.swap_remove(i);
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Probed {
                    value: Some(slot.log_ref),
                    probes,
                };
            }
        }
        Probed {
            value: None,
            probes,
        }
    }

    /// Atomically repoints `(table, hash)` from `old` to `new`.
    ///
    /// The cleaner's relocation path: succeeds only if the slot still
    /// points at `old`, so a racing write that superseded the entry wins.
    pub fn update_ref(
        &self,
        table: TableId,
        hash: KeyHash,
        old: LogRef,
        new: LogRef,
    ) -> bool {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let mut buckets = stripe.buckets.write();
        for slot in &mut buckets[b] {
            if slot.table == table && slot.hash == hash && slot.log_ref == old {
                slot.log_ref = new;
                return true;
            }
        }
        false
    }

    /// Visits whole buckets of entries in `range` belonging to `table`,
    /// starting at `cursor`, until the weights returned by `visit` sum to
    /// at least `budget` (then finishes the current bucket and stops).
    ///
    /// `visit` returns each entry's *weight* toward the budget — record
    /// count (weight 1) or serialized bytes, whichever the caller batches
    /// by. Pulls return "a fixed amount of data (20 KB, for example)"
    /// (Figure 7), so they weight by bytes.
    ///
    /// Returns the advanced cursor (`None` when the range is exhausted)
    /// and the number of slots probed. This is the source-side engine of
    /// bulk Pulls: batches end on bucket boundaries so a resumed pull
    /// never re-sends or skips entries even though the source keeps no
    /// state (§3.1.1).
    pub fn scan_range(
        &self,
        table: TableId,
        range: HashRange,
        cursor: Cursor,
        budget: u64,
        mut visit: impl FnMut(&Slot) -> u64,
    ) -> Probed<Option<Cursor>> {
        if range.is_empty() {
            return Probed {
                value: None,
                probes: 0,
            };
        }
        let first_bucket = self.bucket_of(range.start).max(cursor.bucket);
        let last_bucket = self.bucket_of(range.end);
        let mut probes = 0u32;
        let mut accepted = 0u64;
        let mut bucket = first_bucket;
        while bucket <= last_bucket {
            let (stripe, b) = self.locate(bucket);
            let buckets = stripe.buckets.read();
            for slot in &buckets[b] {
                probes += 1;
                if slot.table == table && range.contains(slot.hash) {
                    accepted += visit(slot);
                }
            }
            drop(buckets);
            bucket += 1;
            if accepted >= budget {
                break;
            }
        }
        let value = if bucket > last_bucket {
            None
        } else {
            Some(Cursor { bucket })
        };
        Probed { value, probes }
    }

    /// Visits every entry of `table` within `range` (no batching).
    pub fn for_each_in_range(
        &self,
        table: TableId,
        range: HashRange,
        mut visit: impl FnMut(&Slot),
    ) {
        let mut cursor = Cursor::default();
        loop {
            let out = self.scan_range(table, range, cursor, u64::MAX, |s| {
                visit(s);
                0
            });
            match out.value {
                Some(next) => cursor = next,
                None => break,
            }
        }
    }
}

impl std::fmt::Debug for HashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashTable")
            .field("buckets", &self.bucket_count)
            .field("stripes", &self.stripes.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(segment: u64, offset: u32) -> LogRef {
        LogRef { segment, offset }
    }

    const T: TableId = TableId(1);

    #[test]
    fn insert_lookup_remove() {
        let ht = HashTable::new(64, 8);
        assert!(ht.is_empty());
        let out = ht.upsert(T, 42, r(1, 0), |_| true);
        assert_eq!(out.value, Upsert::Inserted);
        assert_eq!(ht.len(), 1);
        let found = ht.lookup(T, 42, |_| true);
        assert_eq!(found.value, Some(r(1, 0)));
        assert!(found.probes >= 1);
        let gone = ht.remove(T, 42, |_| true);
        assert_eq!(gone.value, Some(r(1, 0)));
        assert!(ht.is_empty());
        assert_eq!(ht.lookup(T, 42, |_| true).value, None);
    }

    #[test]
    fn upsert_replaces_and_returns_old() {
        let ht = HashTable::new(64, 8);
        ht.upsert(T, 7, r(1, 0), |_| true);
        let out = ht.upsert(T, 7, r(2, 16), |_| true);
        assert_eq!(out.value, Upsert::Replaced(r(1, 0)));
        assert_eq!(ht.len(), 1);
        assert_eq!(ht.lookup(T, 7, |_| true).value, Some(r(2, 16)));
    }

    #[test]
    fn hash_collisions_disambiguated_by_matcher() {
        let ht = HashTable::new(64, 8);
        // Two distinct keys with an identical 64-bit hash coexist when the
        // matcher declares them different.
        ht.upsert(T, 5, r(1, 0), |_| false); // key A
        ht.upsert(T, 5, r(9, 0), |_| false); // key B (no match with A)
        assert_eq!(ht.len(), 2);
        // Lookup B specifically.
        let out = ht.lookup(T, 5, |cand| cand == r(9, 0));
        assert_eq!(out.value, Some(r(9, 0)));
        assert!(out.probes >= 1);
        // Replacing A repoints only A.
        let rep = ht.upsert(T, 5, r(1, 64), |cand| cand == r(1, 0));
        assert_eq!(rep.value, Upsert::Replaced(r(1, 0)));
        assert_eq!(ht.len(), 2);
    }

    #[test]
    fn tables_are_disjoint() {
        let ht = HashTable::new(64, 8);
        ht.upsert(TableId(1), 9, r(1, 0), |_| true);
        ht.upsert(TableId(2), 9, r(2, 0), |_| true);
        assert_eq!(ht.len(), 2);
        assert_eq!(ht.lookup(TableId(1), 9, |_| true).value, Some(r(1, 0)));
        assert_eq!(ht.lookup(TableId(2), 9, |_| true).value, Some(r(2, 0)));
    }

    #[test]
    fn update_ref_is_conditional() {
        let ht = HashTable::new(64, 8);
        ht.upsert(T, 3, r(1, 0), |_| true);
        assert!(ht.update_ref(T, 3, r(1, 0), r(5, 0)));
        assert!(!ht.update_ref(T, 3, r(1, 0), r(6, 0)), "stale CAS must fail");
        assert_eq!(ht.lookup(T, 3, |_| true).value, Some(r(5, 0)));
    }

    #[test]
    fn bucket_order_is_hash_order() {
        let ht = HashTable::new(1024, 8);
        assert!(ht.bucket_of(0) <= ht.bucket_of(u64::MAX / 2));
        assert!(ht.bucket_of(u64::MAX / 2) <= ht.bucket_of(u64::MAX));
        assert_eq!(ht.bucket_of(u64::MAX), ht.bucket_count() - 1);
    }

    #[test]
    fn scan_range_batches_on_bucket_boundaries() {
        let ht = HashTable::new(256, 8);
        // 1000 entries spread over hash space.
        for i in 0..1_000u64 {
            let hash = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ht.upsert(T, hash, r(i, 0), |_| true);
        }
        let range = HashRange::full();
        let mut cursor = Cursor::default();
        let mut seen = Vec::new();
        let mut batches = 0;
        loop {
            let mut batch = Vec::new();
            let out = ht.scan_range(T, range, cursor, 50, |s| {
                batch.push(s.hash);
                1
            });
            batches += 1;
            seen.extend(batch);
            match out.value {
                Some(c) => {
                    assert!(c.bucket > cursor.bucket, "cursor must advance");
                    cursor = c;
                }
                None => break,
            }
            assert!(batches < 10_000, "runaway scan");
        }
        assert!(batches > 1, "expected multiple batches");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1_000, "scan missed or duplicated entries");
    }

    #[test]
    fn scan_range_respects_hash_bounds_and_table() {
        let ht = HashTable::new(256, 8);
        for i in 0..100u64 {
            let hash = i << 56; // spread across top buckets
            ht.upsert(T, hash, r(i, 0), |_| true);
            ht.upsert(TableId(9), hash, r(i, 1), |_| true);
        }
        let range = HashRange {
            start: 10u64 << 56,
            end: 20u64 << 56,
        };
        let mut got = Vec::new();
        ht.for_each_in_range(T, range, |s| got.push((s.hash, s.log_ref)));
        assert_eq!(got.len(), 11);
        for (hash, lr) in got {
            assert!(range.contains(hash));
            assert_eq!(lr.offset, 0, "leaked entry from another table");
        }
    }

    #[test]
    fn scan_empty_range_terminates() {
        let ht = HashTable::new(64, 8);
        let out = ht.scan_range(
            T,
            HashRange { start: 1, end: 0 },
            Cursor::default(),
            10,
            |_| -> u64 { panic!("nothing to visit") },
        );
        assert_eq!(out.value, None);
    }

    #[test]
    fn concurrent_threads_disjoint_partitions() {
        use std::sync::Arc;
        let ht = Arc::new(HashTable::new(1 << 12, 64));
        let parts = HashRange::full().split(4);
        let mut handles = Vec::new();
        for (t, part) in parts.into_iter().enumerate() {
            let ht = Arc::clone(&ht);
            handles.push(std::thread::spawn(move || {
                // Insert 2000 hashes inside this partition.
                let width = part.end - part.start;
                for i in 0..2_000u64 {
                    let hash = part.start + (i * 104_729) % width;
                    ht.upsert(T, hash, r(t as u64, i as u32), |_| true);
                }
                // Then scan the partition back.
                let mut count = 0;
                ht.for_each_in_range(T, part, |_| count += 1);
                count
            }));
        }
        let mut total = 0;
        for h in handles {
            total += h.join().unwrap();
        }
        // Some synthetic hashes may collide; total must equal the table's
        // len and be close to 8000.
        assert_eq!(total, ht.len());
        assert!(total > 7_900, "unexpected collision rate: {total}");
    }
}
