//! The master's primary-key hash table.
//!
//! RAMCloud's only index over its in-memory log is a hash table mapping
//! 64-bit key hashes to log references (§2.3, Figure 6). Rocksteady's
//! migration protocol is built around its structure:
//!
//! - Bucket placement uses the *high* bits of the key hash, so a
//!   contiguous region of key-hash space is a contiguous run of buckets.
//!   This is what lets the target partition the source's key-hash space
//!   and run parallel Pulls over **disjoint regions of the hash table**
//!   with no synchronization between them (§3.1.1, Figure 7).
//! - Pulls resume from a [`Cursor`] — a bucket index — so the source
//!   keeps *no* migration state (§3): the cursor travels in the RPC.
//! - Lookups may probe several entries per bucket (hash collisions are
//!   resolved by comparing the full key stored in the log), and the
//!   number of probes is reported to the caller so the simulator can
//!   charge the cache-miss cost §4.5 measures.
//!
//! # Layout
//!
//! Buckets are RAMCloud-style fixed arrays of [`SLOTS_PER_BUCKET`] inline
//! slots stored in one flat allocation per lock stripe — no per-bucket
//! heap indirection on the hot path. Each slot is guarded by a 16-bit
//! *partial hash* (the low 16 bits of the key hash; bucket placement uses
//! the high bits, so the tag stays discriminating within a bucket). The
//! tag array sits at the front of the bucket, so a lookup touches only
//! the bucket's first cache line unless a tag matches; only then is the
//! full slot compared. A **probe** is such a full-slot examination — tag
//! rejections are not probes, which is exactly the cost the tags remove
//! from the §4.5 model. Buckets that overflow their inline slots chain
//! into a per-bucket spill vector (pathological collision patterns only;
//! removals promote spilled entries back inline).
//!
//! The table is striped-locked and thread-safe; buckets within one stripe
//! share a lock, and stripes cover contiguous bucket ranges so disjoint
//! hash-space partitions touch disjoint locks. Stripes are capped at
//! [`MAX_BUCKETS_PER_STRIPE`] buckets so the run a `scan_range` holds a
//! read lock over stays cache-resident.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;
use rocksteady_common::{KeyHash, TableId};
use rocksteady_logstore::LogRef;

pub use rocksteady_common::range::{HashRange, ScanCursor as Cursor};

/// Inline slots per bucket, mirroring RAMCloud's eight-entry cache-line
/// buckets.
pub const SLOTS_PER_BUCKET: usize = 8;

/// Upper bound on buckets per lock stripe: 128 buckets × ~320 B keeps the
/// run scanned under one read lock around the size of an L2 way, so a
/// Pull's scan stays cache-resident while it holds the lock.
pub const MAX_BUCKETS_PER_STRIPE: usize = 128;

/// One entry: a key (identified by table + hash) and where it lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Owning table.
    pub table: TableId,
    /// Full 64-bit primary-key hash.
    pub hash: KeyHash,
    /// Location of the current version of the object in the log.
    pub log_ref: LogRef,
}

/// Outcome of an [`HashTable::upsert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Upsert {
    /// A new entry was created.
    Inserted,
    /// An existing entry was replaced; holds the prior log reference.
    Replaced(LogRef),
}

/// The result of an operation plus how many slots were examined, so the
/// simulator can charge probe costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probed<T> {
    /// Operation result.
    pub value: T,
    /// Number of slots examined (full comparisons after the partial-hash
    /// tag admitted the slot; tag rejections cost no probe).
    pub probes: u32,
}

/// The 16-bit partial hash stored next to each occupied slot. Bucket
/// indexing consumes high bits, so the low bits stay independent.
#[inline]
fn tag_of(hash: KeyHash) -> u16 {
    hash as u16
}

/// A fixed eight-slot bucket. Field order puts the tag array and
/// occupancy bitmap first so the filtering state shares the bucket's
/// leading cache line.
///
/// # Invariant: the all-zero byte pattern is a valid, empty bucket
///
/// Every field is zero when empty — tags and slots are plain integers,
/// `occupied` is an empty bitmap, and `overflow` is `None` (the
/// guaranteed null-pointer niche of `Option<Box<_>>`). [`HashTable::new`]
/// relies on this to build bucket arrays from `alloc_zeroed`, so a
/// paper-scale table (hundreds of MB across masters) costs zero-page
/// mappings instead of an eager memset, and untouched buckets are never
/// faulted in at all. Adding a field that is not valid-when-zero breaks
/// that construction.
#[repr(C, align(64))]
#[derive(Clone)]
struct Bucket {
    /// Partial hashes of occupied slots (stale values where unoccupied).
    tags: [u16; SLOTS_PER_BUCKET],
    /// Bitmap of occupied inline slots.
    occupied: u8,
    /// Inline entries; valid only where `occupied` has the bit set.
    slots: [Slot; SLOTS_PER_BUCKET],
    /// Spill chain for buckets with more than eight colliding entries;
    /// boxed so the empty case is a null pointer (see invariant above —
    /// `Option<Vec<_>>`'s `None` is not guaranteed to be all-zero bytes,
    /// `Option<Box<_>>`'s is, and overflow is rare enough that the extra
    /// indirection never shows up).
    #[allow(clippy::box_collection)]
    overflow: Option<Box<Vec<Slot>>>,
}

impl Bucket {
    /// Visits every occupied entry (inline then overflow).
    fn for_each(&self, mut f: impl FnMut(&Slot)) {
        let mut occ = self.occupied;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            f(&self.slots[i]);
        }
        if let Some(of) = &self.overflow {
            for slot in of.iter() {
                f(slot);
            }
        }
    }

    /// The overflow chain as a (possibly empty) slice.
    fn spill(&self) -> &[Slot] {
        self.overflow.as_deref().map_or(&[], Vec::as_slice)
    }
}

/// Allocates `n` buckets as one flat zeroed slice.
///
/// `alloc_zeroed` hands back freshly mapped zero pages, so construction
/// is O(1) in touched memory and buckets fault in lazily on first use.
fn zeroed_buckets(n: usize) -> Box<[Bucket]> {
    use std::alloc::{alloc_zeroed, handle_alloc_error, Layout};
    if n == 0 {
        return Box::from([]);
    }
    let layout = Layout::array::<Bucket>(n).expect("bucket array layout");
    // SAFETY: the all-zero byte pattern is a valid `Bucket` (see the
    // invariant on the struct), the layout matches `[Bucket; n]`, and
    // ownership of the allocation transfers to the returned `Box`.
    unsafe {
        let ptr = alloc_zeroed(layout) as *mut Bucket;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, n))
    }
}

struct Stripe {
    /// All of this stripe's buckets in one flat allocation.
    buckets: RwLock<Box<[Bucket]>>,
}

/// The hash table itself.
pub struct HashTable {
    stripes: Vec<Stripe>,
    buckets_per_stripe: usize,
    bucket_count: u64,
    /// `64 - log2(bucket_count)`; bucket index = `hash >> shift`.
    shift: u32,
    len: AtomicUsize,
}

impl HashTable {
    /// Creates a table with at least `min_buckets` buckets (rounded up to
    /// a power of two) spread over at least `max_stripes` lock stripes —
    /// more when needed to keep every stripe within
    /// [`MAX_BUCKETS_PER_STRIPE`] buckets (cache residency).
    pub fn new(min_buckets: usize, max_stripes: usize) -> Self {
        let bucket_count = min_buckets.next_power_of_two().max(2) as u64;
        let mut stripe_count = max_stripes
            .next_power_of_two()
            .clamp(1, bucket_count as usize);
        while bucket_count as usize / stripe_count > MAX_BUCKETS_PER_STRIPE {
            stripe_count *= 2;
        }
        let buckets_per_stripe = (bucket_count as usize) / stripe_count;
        let stripes = (0..stripe_count)
            .map(|_| Stripe {
                buckets: RwLock::new(zeroed_buckets(buckets_per_stripe)),
            })
            .collect();
        HashTable {
            stripes,
            buckets_per_stripe,
            bucket_count,
            shift: 64 - bucket_count.trailing_zeros(),
            len: AtomicUsize::new(0),
        }
    }

    /// Total bucket count (a power of two).
    pub fn bucket_count(&self) -> u64 {
        self.bucket_count
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bucket index for a hash: the *high* bits, so hash-space order is
    /// bucket order.
    pub fn bucket_of(&self, hash: KeyHash) -> u64 {
        hash >> self.shift
    }

    fn locate(&self, bucket: u64) -> (&Stripe, usize) {
        let idx = bucket as usize;
        (
            &self.stripes[idx / self.buckets_per_stripe],
            idx % self.buckets_per_stripe,
        )
    }

    /// Looks up the reference for `(table, hash)`.
    ///
    /// `is_match` disambiguates 64-bit hash collisions by checking the
    /// full key in the log; it receives each candidate's reference.
    pub fn lookup(
        &self,
        table: TableId,
        hash: KeyHash,
        mut is_match: impl FnMut(LogRef) -> bool,
    ) -> Probed<Option<LogRef>> {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let buckets = stripe.buckets.read();
        let bucket = &buckets[b];
        let tag = tag_of(hash);
        let mut probes = 0;
        let mut occ = bucket.occupied;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            if bucket.tags[i] != tag {
                continue;
            }
            probes += 1;
            let slot = &bucket.slots[i];
            if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                return Probed {
                    value: Some(slot.log_ref),
                    probes,
                };
            }
        }
        for slot in bucket.spill() {
            probes += 1;
            if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                return Probed {
                    value: Some(slot.log_ref),
                    probes,
                };
            }
        }
        Probed {
            value: None,
            probes,
        }
    }

    /// Inserts or replaces the entry for `(table, hash)`.
    ///
    /// `is_match` identifies which colliding entry (if any) represents the
    /// same key; when it returns true the slot is repointed at `new_ref`
    /// and the old reference is returned.
    pub fn upsert(
        &self,
        table: TableId,
        hash: KeyHash,
        new_ref: LogRef,
        mut is_match: impl FnMut(LogRef) -> bool,
    ) -> Probed<Upsert> {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let mut buckets = stripe.buckets.write();
        let bucket = &mut buckets[b];
        let tag = tag_of(hash);
        let mut probes = 0;
        let mut occ = bucket.occupied;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            if bucket.tags[i] != tag {
                continue;
            }
            probes += 1;
            let slot = &mut bucket.slots[i];
            if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                let old = slot.log_ref;
                slot.log_ref = new_ref;
                return Probed {
                    value: Upsert::Replaced(old),
                    probes,
                };
            }
        }
        if let Some(of) = &mut bucket.overflow {
            for slot in of.iter_mut() {
                probes += 1;
                if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                    let old = slot.log_ref;
                    slot.log_ref = new_ref;
                    return Probed {
                        value: Upsert::Replaced(old),
                        probes,
                    };
                }
            }
        }
        let slot = Slot {
            table,
            hash,
            log_ref: new_ref,
        };
        if bucket.occupied != u8::MAX {
            let i = (!bucket.occupied).trailing_zeros() as usize;
            bucket.tags[i] = tag;
            bucket.slots[i] = slot;
            bucket.occupied |= 1 << i;
        } else {
            bucket
                .overflow
                .get_or_insert_with(Default::default)
                .push(slot);
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        Probed {
            value: Upsert::Inserted,
            probes: probes + 1,
        }
    }

    /// Removes the entry for `(table, hash)` whose reference satisfies
    /// `is_match`; returns the removed reference.
    pub fn remove(
        &self,
        table: TableId,
        hash: KeyHash,
        mut is_match: impl FnMut(LogRef) -> bool,
    ) -> Probed<Option<LogRef>> {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let mut buckets = stripe.buckets.write();
        let bucket = &mut buckets[b];
        let tag = tag_of(hash);
        let mut probes = 0;
        let mut occ = bucket.occupied;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            if bucket.tags[i] != tag {
                continue;
            }
            probes += 1;
            let slot = bucket.slots[i];
            if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                // Promote a spilled entry into the freed inline slot so the
                // overflow chain stays empty in the common case.
                if let Some(spill) = bucket.overflow.as_mut().and_then(|of| of.pop()) {
                    bucket.tags[i] = tag_of(spill.hash);
                    bucket.slots[i] = spill;
                } else {
                    bucket.occupied &= !(1 << i);
                }
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Probed {
                    value: Some(slot.log_ref),
                    probes,
                };
            }
        }
        if let Some(of) = &mut bucket.overflow {
            for i in 0..of.len() {
                probes += 1;
                let slot = of[i];
                if slot.table == table && slot.hash == hash && is_match(slot.log_ref) {
                    of.swap_remove(i);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    return Probed {
                        value: Some(slot.log_ref),
                        probes,
                    };
                }
            }
        }
        Probed {
            value: None,
            probes,
        }
    }

    /// Atomically repoints `(table, hash)` from `old` to `new`.
    ///
    /// The cleaner's relocation path: succeeds only if the slot still
    /// points at `old`, so a racing write that superseded the entry wins.
    pub fn update_ref(&self, table: TableId, hash: KeyHash, old: LogRef, new: LogRef) -> bool {
        let (stripe, b) = self.locate(self.bucket_of(hash));
        let mut buckets = stripe.buckets.write();
        let bucket = &mut buckets[b];
        let tag = tag_of(hash);
        let mut occ = bucket.occupied;
        while occ != 0 {
            let i = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            if bucket.tags[i] != tag {
                continue;
            }
            let slot = &mut bucket.slots[i];
            if slot.table == table && slot.hash == hash && slot.log_ref == old {
                slot.log_ref = new;
                return true;
            }
        }
        if let Some(of) = &mut bucket.overflow {
            for slot in of.iter_mut() {
                if slot.table == table && slot.hash == hash && slot.log_ref == old {
                    slot.log_ref = new;
                    return true;
                }
            }
        }
        false
    }

    /// Visits whole buckets of entries in `range` belonging to `table`,
    /// starting at `cursor`, until the weights returned by `visit` sum to
    /// at least `budget` (then finishes the current bucket and stops).
    ///
    /// `visit` returns each entry's *weight* toward the budget — record
    /// count (weight 1) or serialized bytes, whichever the caller batches
    /// by. Pulls return "a fixed amount of data (20 KB, for example)"
    /// (Figure 7), so they weight by bytes.
    ///
    /// Returns the advanced cursor (`None` when the range is exhausted)
    /// and the number of slots probed (occupied entries examined). This
    /// is the source-side engine of bulk Pulls: batches end on bucket
    /// boundaries so a resumed pull never re-sends or skips entries even
    /// though the source keeps no state (§3.1.1). The read lock is taken
    /// once per stripe run — a cache-resident stretch of at most
    /// [`MAX_BUCKETS_PER_STRIPE`] flat buckets — not once per bucket.
    pub fn scan_range(
        &self,
        table: TableId,
        range: HashRange,
        cursor: Cursor,
        budget: u64,
        mut visit: impl FnMut(&Slot) -> u64,
    ) -> Probed<Option<Cursor>> {
        if range.is_empty() {
            return Probed {
                value: None,
                probes: 0,
            };
        }
        let first_bucket = self.bucket_of(range.start).max(cursor.bucket);
        let last_bucket = self.bucket_of(range.end);
        let mut probes = 0u32;
        let mut accepted = 0u64;
        let mut bucket = first_bucket;
        'scan: while bucket <= last_bucket {
            let stripe_idx = bucket as usize / self.buckets_per_stripe;
            let stripe_last =
                (((stripe_idx + 1) * self.buckets_per_stripe - 1) as u64).min(last_bucket);
            let buckets = self.stripes[stripe_idx].buckets.read();
            while bucket <= stripe_last {
                buckets[bucket as usize % self.buckets_per_stripe].for_each(|slot| {
                    probes += 1;
                    if slot.table == table && range.contains(slot.hash) {
                        accepted += visit(slot);
                    }
                });
                bucket += 1;
                if accepted >= budget {
                    break 'scan;
                }
            }
        }
        let value = if bucket > last_bucket {
            None
        } else {
            Some(Cursor { bucket })
        };
        Probed { value, probes }
    }

    /// Visits every entry of `table` within `range` (no batching).
    pub fn for_each_in_range(
        &self,
        table: TableId,
        range: HashRange,
        mut visit: impl FnMut(&Slot),
    ) {
        let mut cursor = Cursor::default();
        loop {
            let out = self.scan_range(table, range, cursor, u64::MAX, |s| {
                visit(s);
                0
            });
            match out.value {
                Some(next) => cursor = next,
                None => break,
            }
        }
    }
}

impl std::fmt::Debug for HashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashTable")
            .field("buckets", &self.bucket_count)
            .field("stripes", &self.stripes.len())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(segment: u64, offset: u32) -> LogRef {
        LogRef { segment, offset }
    }

    const T: TableId = TableId(1);

    #[test]
    fn insert_lookup_remove() {
        let ht = HashTable::new(64, 8);
        assert!(ht.is_empty());
        let out = ht.upsert(T, 42, r(1, 0), |_| true);
        assert_eq!(out.value, Upsert::Inserted);
        assert_eq!(ht.len(), 1);
        let found = ht.lookup(T, 42, |_| true);
        assert_eq!(found.value, Some(r(1, 0)));
        assert!(found.probes >= 1);
        let gone = ht.remove(T, 42, |_| true);
        assert_eq!(gone.value, Some(r(1, 0)));
        assert!(ht.is_empty());
        assert_eq!(ht.lookup(T, 42, |_| true).value, None);
    }

    #[test]
    fn upsert_replaces_and_returns_old() {
        let ht = HashTable::new(64, 8);
        ht.upsert(T, 7, r(1, 0), |_| true);
        let out = ht.upsert(T, 7, r(2, 16), |_| true);
        assert_eq!(out.value, Upsert::Replaced(r(1, 0)));
        assert_eq!(ht.len(), 1);
        assert_eq!(ht.lookup(T, 7, |_| true).value, Some(r(2, 16)));
    }

    #[test]
    fn hash_collisions_disambiguated_by_matcher() {
        let ht = HashTable::new(64, 8);
        // Two distinct keys with an identical 64-bit hash coexist when the
        // matcher declares them different.
        ht.upsert(T, 5, r(1, 0), |_| false); // key A
        ht.upsert(T, 5, r(9, 0), |_| false); // key B (no match with A)
        assert_eq!(ht.len(), 2);
        // Lookup B specifically.
        let out = ht.lookup(T, 5, |cand| cand == r(9, 0));
        assert_eq!(out.value, Some(r(9, 0)));
        assert!(out.probes >= 1);
        // Replacing A repoints only A.
        let rep = ht.upsert(T, 5, r(1, 64), |cand| cand == r(1, 0));
        assert_eq!(rep.value, Upsert::Replaced(r(1, 0)));
        assert_eq!(ht.len(), 2);
    }

    #[test]
    fn tables_are_disjoint() {
        let ht = HashTable::new(64, 8);
        ht.upsert(TableId(1), 9, r(1, 0), |_| true);
        ht.upsert(TableId(2), 9, r(2, 0), |_| true);
        assert_eq!(ht.len(), 2);
        assert_eq!(ht.lookup(TableId(1), 9, |_| true).value, Some(r(1, 0)));
        assert_eq!(ht.lookup(TableId(2), 9, |_| true).value, Some(r(2, 0)));
    }

    #[test]
    fn update_ref_is_conditional() {
        let ht = HashTable::new(64, 8);
        ht.upsert(T, 3, r(1, 0), |_| true);
        assert!(ht.update_ref(T, 3, r(1, 0), r(5, 0)));
        assert!(
            !ht.update_ref(T, 3, r(1, 0), r(6, 0)),
            "stale CAS must fail"
        );
        assert_eq!(ht.lookup(T, 3, |_| true).value, Some(r(5, 0)));
    }

    #[test]
    fn bucket_order_is_hash_order() {
        let ht = HashTable::new(1024, 8);
        assert!(ht.bucket_of(0) <= ht.bucket_of(u64::MAX / 2));
        assert!(ht.bucket_of(u64::MAX / 2) <= ht.bucket_of(u64::MAX));
        assert_eq!(ht.bucket_of(u64::MAX), ht.bucket_count() - 1);
    }

    /// The partial-hash tags filter full comparisons: keys that share a
    /// bucket but differ in their low 16 bits never cost a probe against
    /// each other, while the probe count still reports every admitted
    /// full-slot examination for the §4.5 cost model.
    #[test]
    fn tag_filter_prunes_probes() {
        let ht = HashTable::new(2, 1); // two buckets: everything below
                                       // 1<<63 collides into bucket 0
                                       // Five residents of bucket 0 with distinct low bits (distinct tags).
        for i in 0..5u64 {
            ht.upsert(T, i, r(i, 0), |_| true);
        }
        // A lookup of hash 3 must examine exactly the one slot whose tag
        // matches — the other four are rejected by tag alone.
        let found = ht.lookup(T, 3, |_| true);
        assert_eq!(found.value, Some(r(3, 0)));
        assert_eq!(found.probes, 1, "tag filter must prune to one probe");
        // A miss with a fresh tag examines no slots at all.
        assert_eq!(ht.lookup(T, 77, |_| true).probes, 0);
        // Same-tag aliases (low 16 bits equal, high bits differ within the
        // bucket) are all examined: probes reports genuine comparisons.
        let alias_a = 1u64 << 20 | 0xbeef;
        let alias_b = 1u64 << 21 | 0xbeef;
        ht.upsert(T, alias_a, r(10, 0), |_| true);
        ht.upsert(T, alias_b, r(11, 0), |_| true);
        let found = ht.lookup(T, alias_b, |_| true);
        assert_eq!(found.value, Some(r(11, 0)));
        assert_eq!(found.probes, 2, "both tag-matching slots are probed");
    }

    /// More than eight residents of one bucket spill into the overflow
    /// chain; operations still behave like a map and removals promote
    /// spilled entries back inline.
    #[test]
    fn bucket_overflow_chains() {
        let ht = HashTable::new(2, 1);
        // 20 entries, all in bucket 0 (hashes < 1<<63).
        for i in 0..20u64 {
            assert_eq!(ht.upsert(T, i, r(i, 0), |_| true).value, Upsert::Inserted);
        }
        assert_eq!(ht.len(), 20);
        for i in 0..20u64 {
            assert_eq!(ht.lookup(T, i, |_| true).value, Some(r(i, 0)), "key {i}");
        }
        // Scans see inline and spilled entries alike.
        let mut seen = Vec::new();
        ht.for_each_in_range(T, HashRange::full(), |s| seen.push(s.hash));
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<u64>>());
        // Remove everything (exercises inline promotion from overflow).
        for i in 0..20u64 {
            assert_eq!(ht.remove(T, i, |_| true).value, Some(r(i, 0)), "key {i}");
        }
        assert!(ht.is_empty());
    }

    #[test]
    fn scan_range_batches_on_bucket_boundaries() {
        let ht = HashTable::new(256, 8);
        // 1000 entries spread over hash space.
        for i in 0..1_000u64 {
            let hash = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ht.upsert(T, hash, r(i, 0), |_| true);
        }
        let range = HashRange::full();
        let mut cursor = Cursor::default();
        let mut seen = Vec::new();
        let mut batches = 0;
        loop {
            let mut batch = Vec::new();
            let out = ht.scan_range(T, range, cursor, 50, |s| {
                batch.push(s.hash);
                1
            });
            batches += 1;
            seen.extend(batch);
            match out.value {
                Some(c) => {
                    assert!(c.bucket > cursor.bucket, "cursor must advance");
                    cursor = c;
                }
                None => break,
            }
            assert!(batches < 10_000, "runaway scan");
        }
        assert!(batches > 1, "expected multiple batches");
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1_000, "scan missed or duplicated entries");
    }

    #[test]
    fn scan_range_respects_hash_bounds_and_table() {
        let ht = HashTable::new(256, 8);
        for i in 0..100u64 {
            let hash = i << 56; // spread across top buckets
            ht.upsert(T, hash, r(i, 0), |_| true);
            ht.upsert(TableId(9), hash, r(i, 1), |_| true);
        }
        let range = HashRange {
            start: 10u64 << 56,
            end: 20u64 << 56,
        };
        let mut got = Vec::new();
        ht.for_each_in_range(T, range, |s| got.push((s.hash, s.log_ref)));
        assert_eq!(got.len(), 11);
        for (hash, lr) in got {
            assert!(range.contains(hash));
            assert_eq!(lr.offset, 0, "leaked entry from another table");
        }
    }

    #[test]
    fn scan_empty_range_terminates() {
        let ht = HashTable::new(64, 8);
        let out = ht.scan_range(
            T,
            HashRange { start: 1, end: 0 },
            Cursor::default(),
            10,
            |_| -> u64 { panic!("nothing to visit") },
        );
        assert_eq!(out.value, None);
    }

    #[test]
    fn concurrent_threads_disjoint_partitions() {
        use std::sync::Arc;
        let ht = Arc::new(HashTable::new(1 << 12, 64));
        let parts = HashRange::full().split(4);
        let mut handles = Vec::new();
        for (t, part) in parts.into_iter().enumerate() {
            let ht = Arc::clone(&ht);
            handles.push(std::thread::spawn(move || {
                // Insert 2000 hashes inside this partition.
                let width = part.end - part.start;
                for i in 0..2_000u64 {
                    let hash = part.start + (i * 104_729) % width;
                    ht.upsert(T, hash, r(t as u64, i as u32), |_| true);
                }
                // Then scan the partition back.
                let mut count = 0;
                ht.for_each_in_range(T, part, |_| count += 1);
                count
            }));
        }
        let mut total = 0;
        for h in handles {
            total += h.join().unwrap();
        }
        // Some synthetic hashes may collide; total must equal the table's
        // len and be close to 8000.
        assert_eq!(total, ht.len());
        assert!(total > 7_900, "unexpected collision rate: {total}");
    }

    #[test]
    fn concurrent_churn_with_live_scanner() {
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let ht = Arc::new(HashTable::new(1 << 10, 16));
        let parts = HashRange::full().split(4);
        let done = Arc::new(AtomicBool::new(false));

        // A scanner walks the full range in small-budget cursor steps
        // while writers churn. Each pass must never visit the same hash
        // twice: a hash lives in exactly one bucket, the budget only
        // breaks between buckets, and a bucket is visited under one
        // stripe read lock — concurrent removal (which shuffles slots
        // within the bucket) must not make the scan double-count.
        let scanner = {
            let ht = Arc::clone(&ht);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut passes = 0u64;
                while !done.load(Ordering::Acquire) {
                    let mut seen = HashSet::new();
                    let mut cursor = Cursor::default();
                    loop {
                        let out = ht.scan_range(T, HashRange::full(), cursor, 64, |s| {
                            assert!(
                                seen.insert(s.hash),
                                "hash {:#x} visited twice in one pass",
                                s.hash
                            );
                            1
                        });
                        match out.value {
                            Some(next) => cursor = next,
                            None => break,
                        }
                    }
                    passes += 1;
                }
                passes
            })
        };

        // Writers churn disjoint partitions: insert everything, remove
        // the odd hashes, overwrite the evens, ending in a known state.
        let mut writers = Vec::new();
        for (t, part) in parts.into_iter().enumerate() {
            let ht = Arc::clone(&ht);
            writers.push(std::thread::spawn(move || {
                let width = part.end - part.start;
                let hash = |i: u64| part.start + (i * 104_729) % width;
                let mut expect = HashSet::new();
                for i in 0..2_000u64 {
                    ht.upsert(T, hash(i), r(t as u64, i as u32), |_| true);
                    expect.insert(hash(i));
                }
                for i in (1..2_000u64).step_by(2) {
                    // Synthetic hashes can collide; only hashes no even
                    // index also produced may be removed.
                    if (0..2_000).step_by(2).all(|j| hash(j) != hash(i)) {
                        ht.remove(T, hash(i), |_| true);
                        expect.remove(&hash(i));
                    }
                }
                for i in (0..2_000u64).step_by(2) {
                    ht.upsert(T, hash(i), r(t as u64, (i + 1) as u32), |_| true);
                }
                (part, expect)
            }));
        }

        for wtr in writers {
            let (part, expect) = wtr.join().unwrap();
            // After this partition's writer finished, a scan of it must
            // see exactly the surviving hashes: none lost, none
            // duplicated — even while other partitions are still active.
            let mut got = HashSet::new();
            let mut count = 0u64;
            ht.for_each_in_range(T, part, |s| {
                got.insert(s.hash);
                count += 1;
            });
            assert_eq!(count as usize, got.len(), "duplicated slot in scan");
            assert_eq!(got, expect, "lost or phantom slots in partition");
        }
        done.store(true, Ordering::Release);
        let passes = scanner.join().unwrap();
        assert!(passes > 0, "scanner never completed a pass");
    }
}
