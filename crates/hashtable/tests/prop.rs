//! Model-based property tests: the hash table against a `HashMap`, and
//! partitioned scans against exhaustive enumeration.

use std::collections::HashMap;

use proptest::prelude::*;
use rocksteady_common::{HashRange, ScanCursor, TableId};
use rocksteady_hashtable::HashTable;
use rocksteady_logstore::LogRef;

const T: TableId = TableId(1);

fn r(v: u64) -> LogRef {
    LogRef {
        segment: v,
        offset: (v % 97) as u32,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Upsert(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, any::<u64>()).prop_map(|(h, v)| Op::Upsert(h, v)),
        (0u64..64).prop_map(Op::Remove),
        (0u64..64).prop_map(Op::Lookup),
    ]
}

proptest! {
    /// The table behaves exactly like a `HashMap<hash, LogRef>` under any
    /// sequence of upserts, removes, and lookups (keys here are unique
    /// per hash, so the matcher is always `true`).
    #[test]
    fn behaves_like_a_map(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let ht = HashTable::new(64, 8);
        let mut model: HashMap<u64, LogRef> = HashMap::new();
        for op in ops {
            match op {
                Op::Upsert(h, v) => {
                    ht.upsert(T, h, r(v), |_| true);
                    model.insert(h, r(v));
                }
                Op::Remove(h) => {
                    let got = ht.remove(T, h, |_| true).value;
                    prop_assert_eq!(got, model.remove(&h));
                }
                Op::Lookup(h) => {
                    let got = ht.lookup(T, h, |_| true).value;
                    prop_assert_eq!(got, model.get(&h).copied());
                }
            }
            prop_assert_eq!(ht.len(), model.len());
        }
    }

    /// A batched scan over any sub-range visits exactly the model's
    /// entries in that range, once each, for any batch budget.
    #[test]
    fn scan_matches_enumeration(
        hashes in proptest::collection::hash_set(any::<u64>(), 1..200),
        start in any::<u64>(),
        end in any::<u64>(),
        budget in 1u64..50,
        buckets_pow in 4u32..10,
    ) {
        let ht = HashTable::new(1 << buckets_pow, 8);
        for &h in &hashes {
            ht.upsert(T, h, r(h), |_| true);
        }
        let (start, end) = if start <= end { (start, end) } else { (end, start) };
        let range = HashRange { start, end };
        let mut seen = Vec::new();
        let mut cursor = ScanCursor::default();
        loop {
            let out = ht.scan_range(T, range, cursor, budget, |slot| {
                seen.push(slot.hash);
                1
            });
            match out.value {
                Some(next) => {
                    prop_assert!(next.bucket > cursor.bucket, "cursor must advance");
                    cursor = next;
                }
                None => break,
            }
        }
        seen.sort_unstable();
        let mut expect: Vec<u64> = hashes
            .iter()
            .copied()
            .filter(|h| range.contains(*h))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// Splitting any range into any number of partitions and scanning
    /// each partition visits every entry exactly once — the invariant
    /// Rocksteady's parallel Pulls rest on (§3.1.1).
    #[test]
    fn partitioned_scans_are_exhaustive_and_disjoint(
        hashes in proptest::collection::hash_set(any::<u64>(), 1..200),
        partitions in 1usize..12,
    ) {
        let ht = HashTable::new(256, 8);
        for &h in &hashes {
            ht.upsert(T, h, r(h), |_| true);
        }
        let mut seen = Vec::new();
        for part in HashRange::full().split(partitions) {
            ht.for_each_in_range(T, part, |slot| seen.push(slot.hash));
        }
        seen.sort_unstable();
        let mut expect: Vec<u64> = hashes.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }
}
