//! Model-based property tests: the hash table against a `HashMap`, and
//! partitioned scans against exhaustive enumeration.
//!
//! Offline note: this environment cannot fetch `proptest`, so these are
//! seeded randomized property tests driven by the workspace's own
//! deterministic [`Prng`]. Each test runs many independent cases from
//! fixed seeds, so failures reproduce exactly.

use std::collections::{HashMap, HashSet};

use rocksteady_common::rng::Prng;
use rocksteady_common::{HashRange, ScanCursor, TableId};
use rocksteady_hashtable::HashTable;
use rocksteady_logstore::LogRef;

const T: TableId = TableId(1);
const CASES: u64 = 96;

fn r(v: u64) -> LogRef {
    LogRef {
        segment: v,
        offset: (v % 97) as u32,
    }
}

/// The table behaves exactly like a `HashMap<hash, LogRef>` under any
/// sequence of upserts, removes, and lookups (keys here are unique per
/// hash, so the matcher is always `true`).
#[test]
fn behaves_like_a_map() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x6a17_0000 + seed);
        let ops = rng.next_range(1, 400);
        let ht = HashTable::new(64, 8);
        let mut model: HashMap<u64, LogRef> = HashMap::new();
        for _ in 0..ops {
            let h = rng.next_below(64);
            match rng.next_below(3) {
                0 => {
                    let v = rng.next_u64();
                    ht.upsert(T, h, r(v), |_| true);
                    model.insert(h, r(v));
                }
                1 => {
                    let got = ht.remove(T, h, |_| true).value;
                    assert_eq!(got, model.remove(&h), "seed {seed}: remove({h})");
                }
                _ => {
                    let got = ht.lookup(T, h, |_| true).value;
                    assert_eq!(got, model.get(&h).copied(), "seed {seed}: lookup({h})");
                }
            }
            assert_eq!(ht.len(), model.len(), "seed {seed}: len drift");
        }
    }
}

/// A batched scan over any sub-range visits exactly the model's entries
/// in that range, once each, for any batch budget.
#[test]
fn scan_matches_enumeration() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x7a17_0000 + seed);
        let count = rng.next_range(1, 200) as usize;
        let mut hashes = HashSet::new();
        while hashes.len() < count {
            hashes.insert(rng.next_u64());
        }
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (start, end) = if a <= b { (a, b) } else { (b, a) };
        let budget = rng.next_range(1, 49);
        let buckets_pow = rng.next_range(4, 9) as u32;

        let ht = HashTable::new(1 << buckets_pow, 8);
        for &h in &hashes {
            ht.upsert(T, h, r(h), |_| true);
        }
        let range = HashRange { start, end };
        let mut seen = Vec::new();
        let mut cursor = ScanCursor::default();
        loop {
            let out = ht.scan_range(T, range, cursor, budget, |slot| {
                seen.push(slot.hash);
                1
            });
            match out.value {
                Some(next) => {
                    assert!(
                        next.bucket > cursor.bucket,
                        "seed {seed}: cursor must advance"
                    );
                    cursor = next;
                }
                None => break,
            }
        }
        seen.sort_unstable();
        let mut expect: Vec<u64> = hashes
            .iter()
            .copied()
            .filter(|h| range.contains(*h))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect, "seed {seed}");
    }
}

/// Splitting any range into any number of partitions and scanning each
/// partition visits every entry exactly once — the invariant Rocksteady's
/// parallel Pulls rest on (§3.1.1).
#[test]
fn partitioned_scans_are_exhaustive_and_disjoint() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x8a17_0000 + seed);
        let count = rng.next_range(1, 200) as usize;
        let mut hashes = HashSet::new();
        while hashes.len() < count {
            hashes.insert(rng.next_u64());
        }
        let partitions = rng.next_range(1, 11) as usize;

        let ht = HashTable::new(256, 8);
        for &h in &hashes {
            ht.upsert(T, h, r(h), |_| true);
        }
        let mut seen = Vec::new();
        for part in HashRange::full().split(partitions) {
            ht.for_each_in_range(T, part, |slot| seen.push(slot.hash));
        }
        seen.sort_unstable();
        let mut expect: Vec<u64> = hashes.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(seen, expect, "seed {seed}");
    }
}
