//! The master service: tablets, objects, and secondary indexes.
//!
//! A RAMCloud server's *master* component (Figure 1) owns tablets —
//! key-hash ranges of tables — and stores their objects in a
//! log-structured memory ([`rocksteady_logstore`]) indexed by a hash
//! table ([`rocksteady_hashtable`]). This crate implements the master's
//! *state and operations* with no scheduling or networking attached; the
//! simulated server actor (`rocksteady-server`) drives it and charges
//! virtual time for the [`Work`] receipts every operation returns, and
//! the migration protocols (`rocksteady` core crate) manipulate it
//! directly.
//!
//! Contents:
//! - [`service::MasterService`]: object read/write/delete, multi-ops,
//!   version management, tablet ownership checks (including the
//!   migration states of §3), replay for recovery and migration.
//! - [`index`]: secondary indexes as range-partitioned indexlets
//!   (Figure 2): B-tree maps from secondary key to primary-key hashes.
//! - [`work::Work`]: the real-work receipt (probes, bytes copied,
//!   checksummed, appended) the cost model consumes.

pub mod error;
pub mod index;
pub mod service;
pub mod tablet;
pub mod work;

pub use error::OpError;
pub use index::Indexlet;
pub use service::{MasterConfig, MasterService, ReplayDest};
pub use tablet::{LocalTablet, TabletRole};
pub use work::Work;
