//! Work receipts: the real work an operation performed.
//!
//! The storage substrate executes for real; the simulator charges virtual
//! time for what actually happened. Every master operation fills in a
//! [`Work`] receipt — hash-table probes, bytes memcpy'd, bytes
//! checksummed, log appends — and the server actor converts it to
//! nanoseconds through the calibrated
//! [`CostModel`](rocksteady_common::CostModel).

use rocksteady_common::{CostModel, Nanos};

/// Counters of real work performed by one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Work {
    /// Hash-table slots examined.
    pub probes: u64,
    /// Key hashes computed.
    pub hashes: u64,
    /// Bytes copied through memory (staging, copy-out, log appends).
    pub copied_bytes: u64,
    /// Bytes checksummed (log-entry CRCs).
    pub checksummed_bytes: u64,
    /// Log entries appended.
    pub appends: u64,
    /// Serialized bytes appended to a log.
    pub appended_bytes: u64,
    /// Secondary-index entries visited or modified.
    pub index_entries: u64,
    /// Log entries examined by a sequential log scan (baseline
    /// migration, recovery replay input).
    pub scanned_entries: u64,
}

impl Work {
    /// Accumulates another receipt into this one.
    pub fn add(&mut self, other: &Work) {
        self.probes += other.probes;
        self.hashes += other.hashes;
        self.copied_bytes += other.copied_bytes;
        self.checksummed_bytes += other.checksummed_bytes;
        self.appends += other.appends;
        self.appended_bytes += other.appended_bytes;
        self.index_entries += other.index_entries;
        self.scanned_entries += other.scanned_entries;
    }

    /// Converts the receipt into worker-core nanoseconds under `m`.
    ///
    /// Fixed per-operation costs (dispatch, op setup, per-object service)
    /// are charged separately by the server; this covers only the
    /// data-proportional work.
    pub fn service_ns(&self, m: &CostModel) -> Nanos {
        self.probes * m.hash_probe_ns
            + self.hashes * m.record_hash_ns
            + m.copy_ns(self.copied_bytes)
            + m.checksum_ns(self.checksummed_bytes)
            + self.index_entries * m.index_scan_per_entry_ns
            + self.scanned_entries * m.log_scan_per_entry_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_every_field() {
        let mut a = Work {
            probes: 1,
            hashes: 2,
            copied_bytes: 3,
            checksummed_bytes: 4,
            appends: 5,
            appended_bytes: 6,
            index_entries: 7,
            scanned_entries: 8,
        };
        a.add(&a.clone());
        assert_eq!(
            a,
            Work {
                probes: 2,
                hashes: 4,
                copied_bytes: 6,
                checksummed_bytes: 8,
                appends: 10,
                appended_bytes: 12,
                index_entries: 14,
                scanned_entries: 16,
            }
        );
    }

    #[test]
    fn service_time_scales_with_work() {
        let m = CostModel::default();
        let small = Work {
            probes: 1,
            copied_bytes: 100,
            ..Work::default()
        };
        let big = Work {
            probes: 10,
            copied_bytes: 10_000,
            ..Work::default()
        };
        assert!(big.service_ns(&m) > small.service_ns(&m));
        assert_eq!(Work::default().service_ns(&m), 0);
    }
}
