//! Secondary indexes as range-partitioned indexlets (Figure 2).
//!
//! RAMCloud indexes map secondary keys to *primary-key hashes*, never to
//! records, so tables and their indexes scale independently and need not
//! be co-located (§2, [SLIK, ATC '16]). An index is split into indexlets
//! by secondary-key range; a scan touches (usually) one indexlet, then
//! the client multi-gets the returned hashes from the backing tablets —
//! the two-step dance whose dispatch-load consequences Figure 4 measures.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use rocksteady_common::ids::IndexId;
use rocksteady_common::{KeyHash, TableId};

/// One contiguous secondary-key range of one index, owned by one master.
#[derive(Debug)]
pub struct Indexlet {
    /// Indexed table.
    pub table: TableId,
    /// Which of the table's indexes.
    pub index: IndexId,
    /// Inclusive lower bound of the secondary-key range.
    pub lo: Vec<u8>,
    /// Exclusive upper bound (`None` = unbounded).
    pub hi: Option<Vec<u8>>,
    /// Secondary key → set of primary-key hashes (a set because distinct
    /// primary keys may share a secondary key).
    tree: BTreeMap<Vec<u8>, BTreeSet<KeyHash>>,
    entries: u64,
}

impl Indexlet {
    /// Creates an empty indexlet covering `[lo, hi)`.
    pub fn new(table: TableId, index: IndexId, lo: Vec<u8>, hi: Option<Vec<u8>>) -> Self {
        Indexlet {
            table,
            index,
            lo,
            hi,
            tree: BTreeMap::new(),
            entries: 0,
        }
    }

    /// Whether this indexlet's range covers `sec_key`.
    pub fn covers(&self, sec_key: &[u8]) -> bool {
        sec_key >= self.lo.as_slice()
            && match &self.hi {
                Some(hi) => sec_key < hi.as_slice(),
                None => true,
            }
    }

    /// Number of (secondary key, hash) entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the indexlet holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Inserts an entry. Returns false (and does nothing) if the entry
    /// already existed.
    pub fn insert(&mut self, sec_key: &[u8], primary: KeyHash) -> bool {
        debug_assert!(self.covers(sec_key), "insert outside indexlet range");
        let inserted = self
            .tree
            .entry(sec_key.to_vec())
            .or_default()
            .insert(primary);
        if inserted {
            self.entries += 1;
        }
        inserted
    }

    /// Removes an entry. Returns whether it existed.
    pub fn remove(&mut self, sec_key: &[u8], primary: KeyHash) -> bool {
        let Some(set) = self.tree.get_mut(sec_key) else {
            return false;
        };
        let removed = set.remove(&primary);
        if removed {
            self.entries -= 1;
            if set.is_empty() {
                self.tree.remove(sec_key);
            }
        }
        removed
    }

    /// Scans `[begin, end]` (inclusive, clamped to this indexlet's range)
    /// in secondary-key order, returning up to `limit` primary hashes and
    /// the number of entries visited (for cost accounting).
    ///
    /// The boolean is true when `limit` truncated the scan.
    pub fn scan(&self, begin: &[u8], end: &[u8], limit: usize) -> (Vec<KeyHash>, bool, u64) {
        let lo = if begin < self.lo.as_slice() {
            self.lo.as_slice()
        } else {
            begin
        };
        let mut out = Vec::new();
        let mut visited = 0u64;
        let mut truncated = false;
        let range = self
            .tree
            .range::<[u8], _>((Bound::Included(lo), Bound::Included(end)));
        'outer: for (key, hashes) in range {
            if let Some(hi) = &self.hi {
                if key.as_slice() >= hi.as_slice() {
                    break;
                }
            }
            for &h in hashes {
                visited += 1;
                if out.len() >= limit {
                    truncated = true;
                    break 'outer;
                }
                out.push(h);
            }
        }
        (out, truncated, visited)
    }

    /// Splits this indexlet at `split_key`: `self` keeps `[lo, split_key)`
    /// and the returned indexlet covers `[split_key, hi)`.
    ///
    /// This is the index analogue of a tablet split — how Figure 4's
    /// "2 indexlets" configurations are created.
    ///
    /// # Panics
    ///
    /// Panics if `split_key` is outside `(lo, hi)`.
    pub fn split_at(&mut self, split_key: &[u8]) -> Indexlet {
        assert!(
            split_key > self.lo.as_slice(),
            "split key below indexlet range"
        );
        if let Some(hi) = &self.hi {
            assert!(split_key < hi.as_slice(), "split key above indexlet range");
        }
        let upper_tree = self.tree.split_off(split_key);
        let moved: u64 = upper_tree.values().map(|s| s.len() as u64).sum();
        self.entries -= moved;
        let upper = Indexlet {
            table: self.table,
            index: self.index,
            lo: split_key.to_vec(),
            hi: self.hi.take(),
            tree: upper_tree,
            entries: moved,
        };
        self.hi = Some(split_key.to_vec());
        upper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> Indexlet {
        Indexlet::new(TableId(1), IndexId(0), Vec::new(), None)
    }

    #[test]
    fn insert_scan_remove() {
        let mut ix = idx();
        assert!(ix.insert(b"bob", 2));
        assert!(ix.insert(b"alice", 1));
        assert!(ix.insert(b"carol", 3));
        assert!(!ix.insert(b"bob", 2), "duplicate insert");
        assert_eq!(ix.len(), 3);
        let (hashes, truncated, visited) = ix.scan(b"a", b"z", 10);
        assert_eq!(hashes, vec![1, 2, 3], "secondary-key order");
        assert!(!truncated);
        assert_eq!(visited, 3);
        assert!(ix.remove(b"bob", 2));
        assert!(!ix.remove(b"bob", 2));
        assert_eq!(ix.len(), 2);
    }

    #[test]
    fn shared_secondary_keys() {
        let mut ix = idx();
        ix.insert(b"smith", 10);
        ix.insert(b"smith", 20);
        let (hashes, _, _) = ix.scan(b"smith", b"smith", 10);
        assert_eq!(hashes, vec![10, 20]);
    }

    #[test]
    fn scan_respects_bounds_and_limit() {
        let mut ix = idx();
        for i in 0..26u8 {
            ix.insert(&[b'a' + i], i as u64);
        }
        let (hashes, truncated, _) = ix.scan(b"c", b"f", 100);
        assert_eq!(hashes, vec![2, 3, 4, 5]);
        assert!(!truncated);
        let (hashes, truncated, _) = ix.scan(b"a", b"z", 4);
        assert_eq!(hashes.len(), 4);
        assert!(truncated);
    }

    #[test]
    fn covers_and_bounds() {
        let ix = Indexlet::new(TableId(1), IndexId(0), b"m".to_vec(), Some(b"t".to_vec()));
        assert!(!ix.covers(b"a"));
        assert!(ix.covers(b"m"));
        assert!(ix.covers(b"s"));
        assert!(!ix.covers(b"t"));
    }

    #[test]
    fn split_partitions_entries() {
        let mut lower = idx();
        for i in 0..26u8 {
            lower.insert(&[b'a' + i], i as u64);
        }
        let upper = lower.split_at(b"n");
        assert_eq!(lower.len() + upper.len(), 26);
        assert!(lower.covers(b"a") && !lower.covers(b"n"));
        assert!(upper.covers(b"n") && upper.covers(b"z"));
        let (lo_hashes, _, _) = lower.scan(b"a", b"z", 100);
        assert_eq!(lo_hashes.len() as u64, lower.len());
        // Scans on the upper half clamp to its range.
        let (hi_hashes, _, _) = upper.scan(b"a", b"z", 100);
        assert_eq!(hi_hashes.first(), Some(&13));
    }

    #[test]
    fn scan_clamps_to_indexlet_range() {
        let mut ix = Indexlet::new(TableId(1), IndexId(0), b"h".to_vec(), Some(b"p".to_vec()));
        for i in 0..26u8 {
            let k = [b'a' + i];
            if ix.covers(&k) {
                ix.insert(&k, i as u64);
            }
        }
        let (hashes, _, _) = ix.scan(b"a", b"z", 100);
        assert_eq!(hashes, (7..15).map(|i| i as u64).collect::<Vec<_>>());
    }
}
