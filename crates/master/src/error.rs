//! Operation errors surfaced by the master service.

use rocksteady_common::KeyHash;

/// Why a master operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// No tablet on this master covers the key (stale client map, or the
    /// key's tablet has migrated away — the source answers this for a
    /// migrating tablet, §3).
    UnknownTablet,
    /// The key does not exist.
    NotFound,
    /// This master owns the key (migration target) but the record has not
    /// arrived yet; the caller should trigger a PriorityPull for the
    /// hash and tell the client to retry (§3.3).
    NotYetHere {
        /// The key hash that needs priority-pulling.
        hash: KeyHash,
    },
    /// No indexlet on this master covers the requested index range.
    UnknownIndexlet,
    /// The covering tablet is mid-crash-recovery; retry shortly.
    Recovering,
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::UnknownTablet => write!(f, "tablet not owned by this master"),
            OpError::NotFound => write!(f, "no such key"),
            OpError::NotYetHere { hash } => {
                write!(f, "record {hash:#x} not yet migrated to this master")
            }
            OpError::UnknownIndexlet => write!(f, "indexlet not owned by this master"),
            OpError::Recovering => write!(f, "tablet is recovering; retry"),
        }
    }
}

impl std::error::Error for OpError {}
