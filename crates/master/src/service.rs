//! The master's state and operations.
//!
//! [`MasterService`] is the storage brain of one simulated server: the
//! log, the hash table, local tablet roles, and indexlets, with every
//! operation RAMCloud's data path needs (§2) plus the primitives the
//! migration protocols are built from (§3): range gathers for Pulls,
//! hash gathers for PriorityPulls, and version-max replay.
//!
//! No scheduling lives here — operations execute immediately and return a
//! [`Work`] receipt; the server actor charges virtual time for it.

use std::sync::Arc;

use bytes::Bytes;
use rocksteady_common::ids::IndexId;
use rocksteady_common::{HashRange, KeyHash, ScanCursor, ServerId, TableId};
use rocksteady_hashtable::{HashTable, Upsert};
use rocksteady_logstore::entry::serialized_len;
use rocksteady_logstore::{
    Cleaner, EntryKind, Log, LogConfig, LogError, LogRef, Relocation, Relocator, SideLog,
    WindowCache,
};
use rocksteady_proto::Record;

use crate::error::OpError;
use crate::index::Indexlet;
use crate::tablet::{LocalTablet, TabletRole};
use crate::work::Work;

/// Configuration for one master.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// This server's id.
    pub id: ServerId,
    /// Log configuration (segment size, memory budget).
    pub log: LogConfig,
    /// Minimum hash-table buckets (rounded up to a power of two). Sized
    /// so buckets average a handful of entries, like RAMCloud.
    pub hash_buckets: usize,
    /// Lock stripes for the hash table.
    pub hash_stripes: usize,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            id: ServerId(0),
            log: LogConfig::default(),
            hash_buckets: 1 << 16,
            hash_stripes: 256,
        }
    }
}

/// Append sink for [`MasterService::replay_batch`]: the main log or an
/// already-locked side-log appender, erased behind one signature
/// mirroring [`Log::append`].
type ReplayAppend<'a> =
    &'a mut dyn FnMut(EntryKind, u64, u64, u64, &[u8], &[u8]) -> Result<LogRef, LogError>;

/// Where replayed records land: the main log (baseline migration,
/// recovery) or a per-worker side log (Rocksteady parallel replay,
/// §3.1.3).
pub enum ReplayDest<'a> {
    /// Append into the master's main log.
    MainLog,
    /// Append into the given side log.
    Side(&'a SideLog),
}

/// The master service state.
pub struct MasterService {
    /// This server's id.
    pub id: ServerId,
    /// The in-memory log holding every object this master stores.
    pub log: Arc<Log>,
    /// The primary-key hash table over the log.
    pub hashtable: HashTable,
    tablets: Vec<LocalTablet>,
    indexlets: Vec<Indexlet>,
    /// Next object version; strictly greater than every version this
    /// master has ever written or replayed.
    next_version: u64,
    /// Persistent zero-copy window cache for the read path: one
    /// committed-prefix `Bytes` owner per segment lifetime, so reads
    /// return refcounted slices of segment memory instead of copying
    /// values out. Interior mutability because `read` is `&self`.
    read_windows: std::cell::RefCell<WindowCache>,
}

impl MasterService {
    /// Creates an empty master.
    pub fn new(config: MasterConfig) -> Self {
        MasterService {
            id: config.id,
            log: Arc::new(Log::new(config.log)),
            hashtable: HashTable::new(config.hash_buckets, config.hash_stripes),
            tablets: Vec::new(),
            indexlets: Vec::new(),
            next_version: 1,
            read_windows: std::cell::RefCell::new(WindowCache::new()),
        }
    }

    // ------------------------------------------------------------------
    // Tablet management
    // ------------------------------------------------------------------

    /// Registers a tablet with the given role.
    pub fn add_tablet(&mut self, table: TableId, range: HashRange, role: TabletRole) {
        self.tablets.push(LocalTablet { table, range, role });
    }

    /// Removes a tablet registration (its objects remain in the log until
    /// cleaned; RAMCloud drops them lazily too).
    pub fn drop_tablet(&mut self, table: TableId, range: HashRange) {
        self.tablets
            .retain(|t| !(t.table == table && t.range == range));
    }

    /// Changes an existing tablet's role. Returns false if absent.
    pub fn set_tablet_role(&mut self, table: TableId, range: HashRange, role: TabletRole) -> bool {
        for t in &mut self.tablets {
            if t.table == table && t.range == range {
                t.role = role;
                return true;
            }
        }
        false
    }

    /// The tablet covering `(table, hash)`, if any.
    pub fn tablet_covering(&self, table: TableId, hash: KeyHash) -> Option<&LocalTablet> {
        self.tablets.iter().find(|t| t.covers(table, hash))
    }

    /// All local tablets.
    pub fn tablets(&self) -> &[LocalTablet] {
        &self.tablets
    }

    /// Splits an owned tablet at `split_hash`: the existing tablet keeps
    /// `[start, split_hash)` and a new one covers `[split_hash, end]`.
    /// This is the cheap, metadata-only operation Rocksteady's lazy
    /// partitioning relies on (§1: migration starts by splitting).
    ///
    /// Returns the two resulting ranges, or `None` if no owned tablet
    /// covers the split point or the split would be empty.
    pub fn split_tablet(
        &mut self,
        table: TableId,
        split_hash: KeyHash,
    ) -> Option<(HashRange, HashRange)> {
        let t = self
            .tablets
            .iter_mut()
            .find(|t| t.covers(table, split_hash))?;
        if t.range.start == split_hash {
            return None;
        }
        let upper = HashRange {
            start: split_hash,
            end: t.range.end,
        };
        t.range = HashRange {
            start: t.range.start,
            end: split_hash - 1,
        };
        let lower = t.range;
        let role = t.role;
        self.tablets.push(LocalTablet {
            table,
            range: upper,
            role,
        });
        Some((lower, upper))
    }

    // ------------------------------------------------------------------
    // Versioning
    // ------------------------------------------------------------------

    /// The smallest version this master guarantees never to have issued.
    /// A migration target raises its own floor to the source's ceiling so
    /// its fresh writes always supersede migrated values (§3).
    pub fn version_ceiling(&self) -> u64 {
        self.next_version
    }

    /// Raises the version floor to at least `v`.
    pub fn raise_version_floor(&mut self, v: u64) {
        self.next_version = self.next_version.max(v);
    }

    fn take_version(&mut self) -> u64 {
        let v = self.next_version;
        self.next_version += 1;
        v
    }

    /// Whether this master may mutate `(table, hash)`. Migration sources
    /// reject mutation: the migrating tablet is immutable there (§3).
    fn check_writable(&self, table: TableId, hash: KeyHash) -> Result<(), OpError> {
        let tablet = self
            .tablet_covering(table, hash)
            .ok_or(OpError::UnknownTablet)?;
        match tablet.role {
            TabletRole::Owner
            | TabletRole::PullingFrom { .. }
            | TabletRole::BaselineSourceTo { .. } => Ok(()),
            TabletRole::MigratingOutTo { .. } => Err(OpError::UnknownTablet),
            TabletRole::Recovering => Err(OpError::Recovering),
        }
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn key_matcher<'a>(log: &'a Log, key: &'a [u8]) -> impl FnMut(LogRef) -> bool + 'a {
        move |r| log.with_entry(r, |v| v.key == key).unwrap_or(false)
    }

    /// Reads one object by key (or, with `key = None`, by bare hash — the
    /// index-scan follow-up path, Figure 2).
    pub fn read(
        &self,
        table: TableId,
        hash: KeyHash,
        key: Option<&[u8]>,
        work: &mut Work,
    ) -> Result<(Bytes, u64), OpError> {
        let tablet = self
            .tablet_covering(table, hash)
            .ok_or(OpError::UnknownTablet)?;
        let pulling = match tablet.role {
            TabletRole::Owner | TabletRole::BaselineSourceTo { .. } => false,
            TabletRole::PullingFrom { .. } => true,
            TabletRole::MigratingOutTo { .. } => return Err(OpError::UnknownTablet),
            TabletRole::Recovering => return Err(OpError::Recovering),
        };
        let log = Arc::clone(&self.log);
        let found = match key {
            Some(k) => self
                .hashtable
                .lookup(table, hash, Self::key_matcher(&log, k)),
            None => self.hashtable.lookup(table, hash, |_| true),
        };
        work.probes += found.probes as u64;
        match found.value {
            Some(r) => {
                // Zero-copy on the host: the returned value is a
                // refcounted slice of segment memory via the persistent
                // window cache. The *simulated* copy into the RPC
                // response buffer is still charged through
                // `work.copied_bytes` below, so timing is unchanged.
                let e = self
                    .read_windows
                    .borrow_mut()
                    .entry_slices(&self.log, r)
                    .ok_or(OpError::NotFound)?;
                if e.kind == EntryKind::Tombstone {
                    // A tombstone slot is authoritative: the key is
                    // deleted at (at least) this version, and
                    // version-max replay guarantees nothing older can
                    // resurrect it.
                    return Err(OpError::NotFound);
                }
                work.copied_bytes += e.value.len() as u64;
                Ok((e.value, e.version))
            }
            None if pulling => Err(OpError::NotYetHere { hash }),
            None => Err(OpError::NotFound),
        }
    }

    /// Writes one object; returns its new version and log location.
    pub fn write(
        &mut self,
        table: TableId,
        hash: KeyHash,
        key: &[u8],
        value: &[u8],
        work: &mut Work,
    ) -> Result<(u64, LogRef), OpError> {
        self.check_writable(table, hash)?;
        let version = self.take_version();
        let r = self
            .log
            .append(EntryKind::Object, table.0, hash, version, key, value)
            .map_err(|_| OpError::UnknownTablet)?;
        let len = serialized_len(key.len(), value.len()) as u64;
        work.appends += 1;
        work.appended_bytes += len;
        work.copied_bytes += len;
        work.checksummed_bytes += len;
        let log = Arc::clone(&self.log);
        let up = self
            .hashtable
            .upsert(table, hash, r, Self::key_matcher(&log, key));
        work.probes += up.probes as u64;
        if let Upsert::Replaced(old) = up.value {
            let dead = self
                .log
                .with_entry(old, |v| v.serialized_len() as u64)
                .unwrap_or(0);
            self.log.mark_dead(old, dead);
        }
        Ok((version, r))
    }

    /// Deletes one object; returns whether it existed.
    pub fn delete(
        &mut self,
        table: TableId,
        hash: KeyHash,
        key: &[u8],
        work: &mut Work,
    ) -> Result<bool, OpError> {
        self.check_writable(table, hash)?;
        let version = self.take_version();
        let log = Arc::clone(&self.log);
        // Always log the tombstone and keep it indexed: during
        // migration-in the key may exist at the source without having
        // arrived yet, and the tombstone's higher version must win over
        // the late arrival at replay (§3). Dropping the slot instead
        // would let the older object resurrect.
        let r = self
            .log
            .append(EntryKind::Tombstone, table.0, hash, version, key, b"")
            .map_err(|_| OpError::UnknownTablet)?;
        let len = serialized_len(key.len(), 0) as u64;
        work.appends += 1;
        work.appended_bytes += len;
        work.copied_bytes += len;
        work.checksummed_bytes += len;
        let up = self
            .hashtable
            .upsert(table, hash, r, Self::key_matcher(&log, key));
        work.probes += up.probes as u64;
        if let Upsert::Replaced(old) = up.value {
            let (dead, existed) = self
                .log
                .with_entry(old, |v| {
                    (v.serialized_len() as u64, v.kind == EntryKind::Object)
                })
                .unwrap_or((0, false));
            self.log.mark_dead(old, dead);
            Ok(existed)
        } else {
            Ok(false)
        }
    }

    /// The serialized log bytes of the entry at `r` (the unit the write
    /// path replicates to backups), as a zero-copy window aliasing the
    /// segment. The backup's own ingest charges the memcpy; the source
    /// only checksums the chunk onto the wire.
    pub fn entry_bytes(&self, r: LogRef, work: &mut Work) -> Option<Bytes> {
        let bytes = self.read_windows.borrow_mut().entry_bytes(&self.log, r)?;
        work.checksummed_bytes += bytes.len() as u64;
        Some(bytes)
    }

    // ------------------------------------------------------------------
    // Secondary indexes
    // ------------------------------------------------------------------

    /// Registers an indexlet on this master.
    pub fn add_indexlet(&mut self, indexlet: Indexlet) {
        self.indexlets.push(indexlet);
    }

    /// All local indexlets.
    pub fn indexlets(&self) -> &[Indexlet] {
        &self.indexlets
    }

    /// Mutable access to local indexlets (for splits).
    pub fn indexlets_mut(&mut self) -> &mut Vec<Indexlet> {
        &mut self.indexlets
    }

    /// Inserts a secondary-index entry into the covering indexlet.
    pub fn index_insert(
        &mut self,
        table: TableId,
        index: IndexId,
        sec_key: &[u8],
        primary: KeyHash,
        work: &mut Work,
    ) -> Result<(), OpError> {
        let ix = self
            .indexlets
            .iter_mut()
            .find(|i| i.table == table && i.index == index && i.covers(sec_key))
            .ok_or(OpError::UnknownIndexlet)?;
        ix.insert(sec_key, primary);
        work.index_entries += 1;
        Ok(())
    }

    /// Scans the covering indexlet for `[begin, end]`, returning primary
    /// hashes in secondary-key order.
    pub fn index_scan(
        &self,
        table: TableId,
        index: IndexId,
        begin: &[u8],
        end: &[u8],
        limit: usize,
        work: &mut Work,
    ) -> Result<(Vec<KeyHash>, bool), OpError> {
        let ix = self
            .indexlets
            .iter()
            .find(|i| i.table == table && i.index == index && i.covers(begin))
            .ok_or(OpError::UnknownIndexlet)?;
        let (hashes, truncated, visited) = ix.scan(begin, end, limit);
        work.index_entries += visited;
        Ok((hashes, truncated))
    }

    // ------------------------------------------------------------------
    // Migration / recovery primitives
    // ------------------------------------------------------------------

    /// Gathers up to ~`budget_bytes` of records from `range` starting at
    /// `cursor` — the source half of one Pull (§3.1.1, Figure 7). Batches
    /// end on hash-table bucket boundaries; `None` cursor means the
    /// partition is exhausted.
    pub fn gather_range(
        &self,
        table: TableId,
        range: HashRange,
        cursor: ScanCursor,
        budget_bytes: u64,
        work: &mut Work,
    ) -> (Vec<Record>, Option<ScanCursor>) {
        let mut records = Vec::new();
        let mut reader = self.log.slice_reader();
        let out = self
            .hashtable
            .scan_range(table, range, cursor, budget_bytes, |slot| {
                match reader.entry_slices(slot.log_ref) {
                    Some(e) => {
                        let rec = Record {
                            table,
                            key_hash: e.key_hash,
                            version: e.version,
                            tombstone: e.kind == EntryKind::Tombstone,
                            key: e.key,
                            value: e.value,
                        };
                        // Wire size is computed exactly once per record,
                        // here, and serves both as the batch-budget weight
                        // and the checksum-cost charge. The response is
                        // checksummed on the (simulated) wire, but nothing
                        // is memcpy'd: key and value alias the log.
                        let w = rec.wire_size();
                        work.checksummed_bytes += w;
                        records.push(rec);
                        w
                    }
                    None => 0,
                }
            });
        work.probes += out.probes as u64;
        (records, out.value)
    }

    /// Gathers specific keys by hash — the source half of a PriorityPull
    /// (§3.3). Hashes with no live record are silently absent.
    pub fn gather_hashes(
        &self,
        table: TableId,
        hashes: &[KeyHash],
        work: &mut Work,
    ) -> Vec<Record> {
        let mut records = Vec::new();
        let mut reader = self.log.slice_reader();
        for &hash in hashes {
            let found = self.hashtable.lookup(table, hash, |_| true);
            work.probes += found.probes as u64;
            if let Some(r) = found.value {
                if let Some(e) = reader.entry_slices(r) {
                    let rec = Record {
                        table,
                        key_hash: e.key_hash,
                        version: e.version,
                        tombstone: e.kind == EntryKind::Tombstone,
                        key: e.key,
                        value: e.value,
                    };
                    // Zero-copy like gather_range: checksummed on the
                    // wire, never memcpy'd.
                    work.checksummed_bytes += rec.wire_size();
                    records.push(rec);
                }
            }
        }
        records
    }

    /// Replays one record with version-max semantics: the incoming record
    /// is applied only if it is newer than what this master already has.
    /// Used by migration replay (§3.1.3), baseline replay (§2.3), and
    /// crash recovery.
    ///
    /// Returns whether it was applied.
    pub fn replay_record(&mut self, rec: &Record, dest: ReplayDest<'_>, work: &mut Work) -> bool {
        self.replay_batch(std::slice::from_ref(rec), dest, work) == 1
    }

    /// Replays a whole Pull response's worth of records with version-max
    /// semantics, amortizing per-record overhead across the batch: the
    /// side log's lock is taken once (not once per record) and the
    /// version floor is raised once to cover the batch's max version.
    /// Records are applied in order, so a batch that carries two versions
    /// of one key still converges to the newest.
    ///
    /// Returns how many records were applied.
    pub fn replay_batch(
        &mut self,
        recs: &[Record],
        dest: ReplayDest<'_>,
        work: &mut Work,
    ) -> usize {
        if recs.is_empty() {
            return 0;
        }
        // The floor only ever grows, so one raise to the batch max is
        // equivalent to raising per applied record.
        let max_version = recs.iter().map(|r| r.version).max().unwrap_or(0);
        self.raise_version_floor(max_version + 1);
        match dest {
            ReplayDest::MainLog => {
                let log = Arc::clone(&self.log);
                recs.iter()
                    .filter(|rec| {
                        self.replay_one(
                            rec,
                            &mut |k, t, h, v, key, val| log.append(k, t, h, v, key, val),
                            work,
                        )
                    })
                    .count()
            }
            ReplayDest::Side(side) => side.append_batch(|a| {
                recs.iter()
                    .filter(|rec| {
                        self.replay_one(
                            rec,
                            &mut |k, t, h, v, key, val| a.append(k, t, h, v, key, val),
                            work,
                        )
                    })
                    .count()
            }),
        }
    }

    /// Version-max replay of a single record through `append`, which the
    /// caller points at the main log or an already-locked side-log
    /// appender. The caller has already raised the version floor.
    fn replay_one(&mut self, rec: &Record, append: ReplayAppend<'_>, work: &mut Work) -> bool {
        let log = Arc::clone(&self.log);
        let table = rec.table;
        let existing =
            self.hashtable
                .lookup(table, rec.key_hash, Self::key_matcher(&log, &rec.key));
        work.probes += existing.probes as u64;
        if let Some(r) = existing.value {
            let existing_version = self.log.with_entry(r, |v| v.version).unwrap_or(0);
            if existing_version >= rec.version {
                return false;
            }
        }
        let kind = if rec.tombstone {
            EntryKind::Tombstone
        } else {
            EntryKind::Object
        };
        let Ok(new_ref) = append(
            kind,
            table.0,
            rec.key_hash,
            rec.version,
            &rec.key,
            &rec.value,
        ) else {
            return false;
        };
        let len = serialized_len(rec.key.len(), rec.value.len()) as u64;
        work.appends += 1;
        work.appended_bytes += len;
        work.copied_bytes += len;
        work.checksummed_bytes += len;
        // Objects and tombstones both keep a slot: the tombstone's
        // presence (with its version) is what makes unordered replay
        // delete-safe.
        let up = self.hashtable.upsert(
            table,
            rec.key_hash,
            new_ref,
            Self::key_matcher(&log, &rec.key),
        );
        work.probes += up.probes as u64;
        if let Upsert::Replaced(old) = up.value {
            let dead = self
                .log
                .with_entry(old, |v| v.serialized_len() as u64)
                .unwrap_or(0);
            self.log.mark_dead(old, dead);
        }
        true
    }

    /// Direct load for experiment setup: behaves like a normal write but
    /// skips tablet-ownership checks (the harness loads tables before the
    /// coordinator map exists).
    pub fn load_object(&mut self, table: TableId, key: &[u8], value: &[u8]) -> LogRef {
        self.load_object_hashed(table, rocksteady_common::key_hash(key), key, value)
    }

    /// [`MasterService::load_object`] with the key hash precomputed —
    /// the bulk loader already hashed every key to route it to its
    /// owner, and paper-scale loads (10⁷+ records) cannot afford to
    /// hash twice.
    pub fn load_object_hashed(
        &mut self,
        table: TableId,
        hash: KeyHash,
        key: &[u8],
        value: &[u8],
    ) -> LogRef {
        let version = self.take_version();
        let r = self
            .log
            .append(EntryKind::Object, table.0, hash, version, key, value)
            .expect("load append failed");
        let log = Arc::clone(&self.log);
        let up = self
            .hashtable
            .upsert(table, hash, r, Self::key_matcher(&log, key));
        if let Upsert::Replaced(old) = up.value {
            let dead = self
                .log
                .with_entry(old, |v| v.serialized_len() as u64)
                .unwrap_or(0);
            self.log.mark_dead(old, dead);
        }
        r
    }

    /// Runs one log-cleaner pass, relocating live entries and repointing
    /// the hash table. Returns the cleaner's statistics if anything was
    /// cleaned.
    pub fn clean_once(&mut self, cleaner: &Cleaner) -> Option<rocksteady_logstore::CleanStats> {
        struct Hooked<'a> {
            hashtable: &'a HashTable,
            log: &'a Log,
        }
        impl Relocator for Hooked<'_> {
            fn disposition(
                &mut self,
                view: &rocksteady_logstore::EntryView<'_>,
                old: LogRef,
            ) -> Relocation {
                if view.kind == EntryKind::SideLogCommit {
                    return Relocation::Keep;
                }
                // Objects and tombstones alike are live iff the hash
                // table still points at them (a tombstone is superseded
                // by any newer write of the key).
                let key = view.key;
                let current = self
                    .hashtable
                    .lookup(TableId(view.table_id), view.key_hash, |r| {
                        r == old || self.log.with_entry(r, |v| v.key == key).unwrap_or(false)
                    })
                    .value;
                if current == Some(old) {
                    Relocation::Keep
                } else {
                    Relocation::Drop
                }
            }

            fn relocated(
                &mut self,
                view: &rocksteady_logstore::EntryView<'_>,
                old: LogRef,
                new: LogRef,
            ) {
                if view.kind != EntryKind::SideLogCommit {
                    self.hashtable
                        .update_ref(TableId(view.table_id), view.key_hash, old, new);
                }
            }
        }
        let log = Arc::clone(&self.log);
        let mut hooked = Hooked {
            hashtable: &self.hashtable,
            log: &log,
        };
        cleaner.clean_once(&self.log, &mut hooked).ok().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::key_hash;

    const T: TableId = TableId(1);

    fn owner_master() -> MasterService {
        let mut m = MasterService::new(MasterConfig {
            log: LogConfig {
                segment_bytes: 4096,
                max_segments: None,
            },
            hash_buckets: 256,
            hash_stripes: 16,
            ..MasterConfig::default()
        });
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        m
    }

    fn w() -> Work {
        Work::default()
    }

    #[test]
    fn write_then_read() {
        let mut m = owner_master();
        let h = key_hash(b"alice");
        let mut work = w();
        let (v1, _) = m.write(T, h, b"alice", b"hello", &mut work).unwrap();
        assert!(work.appends == 1 && work.probes > 0);
        let (value, version) = m.read(T, h, Some(b"alice"), &mut w()).unwrap();
        assert_eq!(&value[..], b"hello");
        assert_eq!(version, v1);
    }

    #[test]
    fn overwrites_bump_version_and_kill_old_entry() {
        let mut m = owner_master();
        let h = key_hash(b"k");
        let (v1, _) = m.write(T, h, b"k", b"one", &mut w()).unwrap();
        let live_before = m.log.stats().live_bytes;
        let (v2, _) = m.write(T, h, b"k", b"two", &mut w()).unwrap();
        assert!(v2 > v1);
        let (value, _) = m.read(T, h, Some(b"k"), &mut w()).unwrap();
        assert_eq!(&value[..], b"two");
        // The superseded entry was marked dead.
        assert!(m.log.stats().live_bytes <= live_before + 50);
    }

    #[test]
    fn read_unowned_hash_is_unknown_tablet() {
        let mut m = MasterService::new(MasterConfig::default());
        m.add_tablet(T, HashRange { start: 0, end: 10 }, TabletRole::Owner);
        let err = m.read(T, 11, None, &mut w()).unwrap_err();
        assert_eq!(err, OpError::UnknownTablet);
        let err = m.write(T, 11, b"k", b"v", &mut w()).unwrap_err();
        assert_eq!(err, OpError::UnknownTablet);
    }

    #[test]
    fn missing_key_not_found() {
        let m = owner_master();
        let err = m.read(T, key_hash(b"ghost"), Some(b"ghost"), &mut w());
        assert_eq!(err.unwrap_err(), OpError::NotFound);
    }

    #[test]
    fn delete_appends_tombstone() {
        let mut m = owner_master();
        let h = key_hash(b"k");
        m.write(T, h, b"k", b"v", &mut w()).unwrap();
        assert!(m.delete(T, h, b"k", &mut w()).unwrap());
        assert_eq!(
            m.read(T, h, Some(b"k"), &mut w()).unwrap_err(),
            OpError::NotFound
        );
        // Deleting again reports absent but still logs a tombstone.
        assert!(!m.delete(T, h, b"k", &mut w()).unwrap());
    }

    #[test]
    fn migration_source_rejects_everything() {
        let mut m = owner_master();
        let h = key_hash(b"k");
        m.write(T, h, b"k", b"v", &mut w()).unwrap();
        m.set_tablet_role(
            T,
            HashRange::full(),
            TabletRole::MigratingOutTo {
                target: ServerId(9),
            },
        );
        assert_eq!(
            m.read(T, h, Some(b"k"), &mut w()).unwrap_err(),
            OpError::UnknownTablet
        );
        assert_eq!(
            m.write(T, h, b"k", b"v2", &mut w()).unwrap_err(),
            OpError::UnknownTablet
        );
    }

    #[test]
    fn migration_target_read_miss_is_not_yet_here() {
        let mut m = MasterService::new(MasterConfig::default());
        m.add_tablet(
            T,
            HashRange::full(),
            TabletRole::PullingFrom {
                source: ServerId(2),
            },
        );
        let h = key_hash(b"waiting");
        assert_eq!(
            m.read(T, h, Some(b"waiting"), &mut w()).unwrap_err(),
            OpError::NotYetHere { hash: h }
        );
        // Writes are accepted immediately (§3).
        let (v, _) = m.write(T, h, b"waiting", b"fresh", &mut w()).unwrap();
        assert!(v >= 1);
        let (value, _) = m.read(T, h, Some(b"waiting"), &mut w()).unwrap();
        assert_eq!(&value[..], b"fresh");
    }

    #[test]
    fn split_tablet_metadata_only() {
        let mut m = owner_master();
        let mid = u64::MAX / 2 + 1;
        let (lo, hi) = m.split_tablet(T, mid).unwrap();
        assert_eq!(lo.end + 1, hi.start);
        assert_eq!(m.tablets().len(), 2);
        assert!(m.tablet_covering(T, 0).unwrap().range.contains(0));
        assert!(m.tablet_covering(T, u64::MAX).unwrap().range.start == mid);
        // Splitting at a range start is rejected.
        assert!(m.split_tablet(T, mid).is_none());
    }

    #[test]
    fn gather_range_returns_all_records_in_batches() {
        let mut m = owner_master();
        for i in 0..200u64 {
            let key = format!("key-{i}");
            m.write(
                T,
                key_hash(key.as_bytes()),
                key.as_bytes(),
                b"0123456789",
                &mut w(),
            )
            .unwrap();
        }
        let range = HashRange::full();
        let mut cursor = ScanCursor::default();
        let mut got = Vec::new();
        let mut batches = 0;
        loop {
            let (records, next) = m.gather_range(T, range, cursor, 2_000, &mut w());
            batches += 1;
            got.extend(records);
            match next {
                Some(c) => cursor = c,
                None => break,
            }
            assert!(batches < 1_000);
        }
        assert!(batches > 1, "should take multiple 2KB batches");
        assert_eq!(got.len(), 200);
        let mut hashes: Vec<u64> = got.iter().map(|r| r.key_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 200, "duplicates or losses in gather");
    }

    /// The pull path is zero-copy: gathered keys and values alias the
    /// log's segment memory (no per-record heap copies), and the `Bytes`
    /// keep a removed segment's memory alive — the ownership rule the
    /// cleaner relies on.
    #[test]
    fn gather_aliases_segment_memory_and_keeps_it_alive() {
        let mut m = owner_master();
        let h = key_hash(b"pinned");
        m.write(T, h, b"pinned", b"payload-bytes", &mut w())
            .unwrap();
        let (records, _) = m.gather_range(
            T,
            HashRange::full(),
            ScanCursor::default(),
            u64::MAX,
            &mut w(),
        );
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        // Both slices point inside the segment's committed buffer.
        let lr = m.hashtable.lookup(T, h, |_| true).value.unwrap();
        let seg = m.log.segment(lr.segment).unwrap();
        let buf = seg.committed_bytes();
        let within = |b: &Bytes| {
            let p = b.as_slice().as_ptr() as usize;
            let start = buf.as_ptr() as usize;
            p >= start && p + b.len() <= start + buf.len()
        };
        assert!(within(&rec.key), "key was copied off the log");
        assert!(within(&rec.value), "value was copied off the log");
        assert_eq!(&rec.value[..], b"payload-bytes");
        // Removing the segment from the log must not invalidate in-flight
        // slices: the Bytes hold the segment Arc.
        drop(seg);
        // (The head segment is never removable; roll it first.)
        let first_seg = lr.segment;
        while m.log.head_segment_id() == first_seg {
            m.write(T, key_hash(b"filler"), b"filler", &[0u8; 1024], &mut w())
                .unwrap();
        }
        m.log.remove_segment(first_seg).unwrap();
        assert_eq!(&rec.value[..], b"payload-bytes", "slice outlived removal");
    }

    #[test]
    fn gather_hashes_fetches_specific_records() {
        let mut m = owner_master();
        let h1 = key_hash(b"a");
        let h2 = key_hash(b"b");
        m.write(T, h1, b"a", b"va", &mut w()).unwrap();
        m.write(T, h2, b"b", b"vb", &mut w()).unwrap();
        let recs = m.gather_hashes(T, &[h1, key_hash(b"missing"), h2], &mut w());
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().any(|r| &r.key[..] == b"a"));
        assert!(recs.iter().any(|r| &r.key[..] == b"b"));
    }

    #[test]
    fn replay_respects_version_order() {
        let mut m = owner_master();
        let h = key_hash(b"k");
        let rec = |version: u64, value: &str, tombstone: bool| Record {
            table: T,
            key_hash: h,
            version,
            key: Bytes::from_static(b"k"),
            value: Bytes::copy_from_slice(value.as_bytes()),
            tombstone,
        };
        assert!(m.replay_record(&rec(5, "v5", false), ReplayDest::MainLog, &mut w()));
        // Older record loses.
        assert!(!m.replay_record(&rec(3, "v3", false), ReplayDest::MainLog, &mut w()));
        let (value, version) = m.read(T, h, Some(b"k"), &mut w()).unwrap();
        assert_eq!(&value[..], b"v5");
        assert_eq!(version, 5);
        // Newer tombstone wins.
        assert!(m.replay_record(&rec(6, "", true), ReplayDest::MainLog, &mut w()));
        assert_eq!(
            m.read(T, h, Some(b"k"), &mut w()).unwrap_err(),
            OpError::NotFound
        );
        // Replay raised the version floor past everything seen.
        assert!(m.version_ceiling() >= 7);
    }

    #[test]
    fn replay_into_side_log_then_commit() {
        let mut m = owner_master();
        let side = SideLog::new(Arc::clone(&m.log));
        let h = key_hash(b"side");
        let rec = Record {
            table: T,
            key_hash: h,
            version: 9,
            key: Bytes::from_static(b"side"),
            value: Bytes::from_static(b"data"),
            tombstone: false,
        };
        assert!(m.replay_record(&rec, ReplayDest::Side(&side), &mut w()));
        // Visible via the hash table even before commit (the slot points
        // into the side segment).
        let (value, _) = m.read(T, h, Some(b"side"), &mut w()).unwrap();
        assert_eq!(&value[..], b"data");
        side.commit().unwrap();
        let (value, _) = m.read(T, h, Some(b"side"), &mut w()).unwrap();
        assert_eq!(&value[..], b"data");
    }

    #[test]
    fn replay_batch_into_side_log_preserves_version_max() {
        let mut m = MasterService::new(MasterConfig::default());
        m.add_tablet(
            T,
            HashRange::full(),
            TabletRole::PullingFrom {
                source: ServerId(1),
            },
        );
        let side = SideLog::new(Arc::clone(&m.log));
        let rec = |key: &str, version: u64, value: &str| Record {
            table: T,
            key_hash: key_hash(key.as_bytes()),
            version,
            key: Bytes::copy_from_slice(key.as_bytes()),
            value: Bytes::copy_from_slice(value.as_bytes()),
            tombstone: false,
        };
        // One batch carrying a duplicate key (v5 then v7) plus a distinct
        // key: later records in the batch must see earlier ones.
        let batch = vec![
            rec("dup", 5, "old"),
            rec("dup", 7, "new"),
            rec("solo", 3, "x"),
        ];
        let mut work = w();
        assert_eq!(
            m.replay_batch(&batch, ReplayDest::Side(&side), &mut work),
            3
        );
        assert_eq!(work.appends, 3);
        // A second identical batch is fully rejected (idempotent), and a
        // stale single record loses to the batch's winner.
        assert_eq!(m.replay_batch(&batch, ReplayDest::Side(&side), &mut w()), 0);
        assert!(!m.replay_record(&rec("dup", 6, "stale"), ReplayDest::Side(&side), &mut w()));
        // Floor was raised past the batch max in one step.
        assert!(m.version_ceiling() > 7);
        side.commit().unwrap();
        let (value, _) = m.read(T, key_hash(b"dup"), Some(b"dup"), &mut w()).unwrap();
        assert_eq!(&value[..], b"new");
        let (value, _) = m
            .read(T, key_hash(b"solo"), Some(b"solo"), &mut w())
            .unwrap();
        assert_eq!(&value[..], b"x");
    }

    #[test]
    fn version_ceiling_transfer_keeps_writes_winning() {
        // Simulates §3's ownership handoff: target raises its floor to the
        // source ceiling, writes a fresh value, then the stale record
        // arrives late via replay and must lose.
        let mut source = owner_master();
        let h = key_hash(b"hot");
        source.write(T, h, b"hot", b"old", &mut w()).unwrap();
        let ceiling = source.version_ceiling();

        let mut target = MasterService::new(MasterConfig::default());
        target.add_tablet(
            T,
            HashRange::full(),
            TabletRole::PullingFrom {
                source: ServerId(1),
            },
        );
        target.raise_version_floor(ceiling);
        target.write(T, h, b"hot", b"new", &mut w()).unwrap();
        // Now the migrated copy arrives late.
        let stale = source.gather_hashes(T, &[h], &mut w());
        assert!(!target.replay_record(&stale[0], ReplayDest::MainLog, &mut w()));
        let (value, _) = target.read(T, h, Some(b"hot"), &mut w()).unwrap();
        assert_eq!(&value[..], b"new");
    }

    #[test]
    fn entry_bytes_roundtrip_for_replication() {
        let mut m = owner_master();
        let h = key_hash(b"k");
        let (_, r) = m.write(T, h, b"k", b"replicate-me", &mut w()).unwrap();
        let bytes = m.entry_bytes(r, &mut w()).unwrap();
        let (view, _) = rocksteady_logstore::entry::parse(&bytes).unwrap();
        assert_eq!(view.key, b"k");
        assert_eq!(view.value, b"replicate-me");
    }

    #[test]
    fn index_insert_and_scan() {
        let mut m = owner_master();
        m.add_indexlet(Indexlet::new(T, IndexId(0), Vec::new(), None));
        for (name, id) in [("bob", 2u64), ("alice", 1), ("carol", 3)] {
            m.index_insert(T, IndexId(0), name.as_bytes(), id, &mut w())
                .unwrap();
        }
        let (hashes, truncated) = m
            .index_scan(T, IndexId(0), b"a", b"z", 10, &mut w())
            .unwrap();
        assert_eq!(hashes, vec![1, 2, 3]);
        assert!(!truncated);
        assert_eq!(
            m.index_scan(T, IndexId(9), b"a", b"z", 10, &mut w())
                .unwrap_err(),
            OpError::UnknownIndexlet
        );
    }

    #[test]
    fn cleaner_integration_preserves_reads() {
        let mut m = MasterService::new(MasterConfig {
            log: LogConfig {
                segment_bytes: 1024,
                max_segments: None,
            },
            hash_buckets: 256,
            hash_stripes: 16,
            ..MasterConfig::default()
        });
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        // Two generations so half the entries are dead.
        for round in 0..2 {
            for i in 0..100u64 {
                let key = format!("k{i}");
                let value = format!("value-{round}-{i}");
                m.write(
                    T,
                    key_hash(key.as_bytes()),
                    key.as_bytes(),
                    value.as_bytes(),
                    &mut w(),
                )
                .unwrap();
            }
        }
        let cleaner = Cleaner {
            utilization_threshold: 0.95,
            max_segments_per_pass: 4,
        };
        let mut cleaned_any = false;
        for _ in 0..50 {
            match m.clean_once(&cleaner) {
                Some(stats) => {
                    cleaned_any |= stats.segments_cleaned > 0;
                }
                None => break,
            }
        }
        assert!(cleaned_any, "cleaner never ran");
        for i in 0..100u64 {
            let key = format!("k{i}");
            let (value, _) = m
                .read(T, key_hash(key.as_bytes()), Some(key.as_bytes()), &mut w())
                .unwrap();
            assert_eq!(value, format!("value-1-{i}").as_bytes());
        }
    }
}
