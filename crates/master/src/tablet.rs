//! Local tablet bookkeeping on one master.
//!
//! The master's view of a tablet is richer than the coordinator's
//! descriptor: during a Rocksteady migration the *target* needs to know
//! which records have arrived (it answers reads), while the *source* only
//! needs the single bit "this range is migrating away" — sources keep no
//! other migration state (§3).

use rocksteady_common::{HashRange, ServerId, TableId};

/// This master's role for one tablet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TabletRole {
    /// Normal ownership: serve everything.
    Owner,
    /// Rocksteady target: owner of record, but data may still be arriving
    /// from `source`. Reads of absent keys yield
    /// [`OpError::NotYetHere`](crate::OpError::NotYetHere).
    PullingFrom {
        /// Where the data still lives.
        source: ServerId,
    },
    /// Rocksteady source: ownership has moved; reject clients with
    /// `UnknownTablet`, serve only Pull/PriorityPull. The tablet's data
    /// is immutable here (§3).
    MigratingOutTo {
        /// The new owner.
        target: ServerId,
    },
    /// Baseline-migration source: still the owner (clients served here,
    /// with writes allowed only before the scan passes them — our
    /// baseline freezes writes to the range, §2.3), while copying to
    /// `target`.
    BaselineSourceTo {
        /// Where data is being copied.
        target: ServerId,
    },
    /// Crash recovery in progress: all client traffic is turned away
    /// with a retry until the replicated log has been replayed, so no
    /// write can be accepted below the versions the dead participant
    /// issued (§3.4 / §2's unavailability window during recovery).
    Recovering,
}

/// One tablet as this master sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalTablet {
    /// Table the tablet belongs to.
    pub table: TableId,
    /// Key-hash range (inclusive).
    pub range: HashRange,
    /// This master's role.
    pub role: TabletRole,
}

impl LocalTablet {
    /// Whether this tablet covers `(table, hash)`.
    pub fn covers(&self, table: TableId, hash: u64) -> bool {
        self.table == table && self.range.contains(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_table_and_range() {
        let t = LocalTablet {
            table: TableId(1),
            range: HashRange { start: 0, end: 10 },
            role: TabletRole::Owner,
        };
        assert!(t.covers(TableId(1), 0));
        assert!(t.covers(TableId(1), 10));
        assert!(!t.covers(TableId(1), 11));
        assert!(!t.covers(TableId(2), 5));
    }
}
