//! Property tests for the foundation types: histogram accuracy, range
//! splitting, and sampler domains.

use proptest::prelude::*;
use rocksteady_common::rng::Prng;
use rocksteady_common::zipf::{KeyDist, KeySampler};
use rocksteady_common::{key_hash, HashRange, Histogram};

proptest! {
    /// Histogram percentiles track the exact (sorted) percentile within
    /// the documented 1/64 relative-error bound.
    #[test]
    fn histogram_percentiles_within_resolution(
        mut values in proptest::collection::vec(1u64..10_000_000, 1..500),
        q in 0.0f64..=1.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
        let exact = values[idx] as f64;
        let approx = h.percentile(q) as f64;
        // The estimate is the bucket's upper edge, clamped to observed
        // min/max: it may exceed the exact value by one bucket width.
        prop_assert!(
            approx >= exact * (1.0 - 1.0 / 64.0) - 1.0,
            "approx {approx} far below exact {exact}"
        );
        prop_assert!(
            approx <= exact * (1.0 + 2.0 / 64.0) + 1.0,
            "approx {approx} far above exact {exact}"
        );
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn histogram_merge_is_union(
        a in proptest::collection::vec(1u64..1_000_000, 0..200),
        b in proptest::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            prop_assert_eq!(ha.percentile(q), hu.percentile(q));
        }
    }

    /// Range splits cover the whole input range exactly once.
    #[test]
    fn split_is_a_partition(start in any::<u64>(), end in any::<u64>(), n in 1usize..32) {
        let (start, end) = if start <= end { (start, end) } else { (end, start) };
        let range = HashRange { start, end };
        let parts = range.split(n);
        prop_assert_eq!(parts.len(), n);
        let nonempty: Vec<_> = parts.iter().filter(|p| !p.is_empty()).collect();
        prop_assert_eq!(nonempty.first().map(|p| p.start), Some(start));
        prop_assert_eq!(nonempty.last().map(|p| p.end), Some(end));
        for w in nonempty.windows(2) {
            prop_assert_eq!(w[0].end.wrapping_add(1), w[1].start, "gap or overlap");
        }
        // Width conservation (empty ranges contribute zero).
        let total: u128 = nonempty.iter().map(|p| p.width() as u128).sum();
        prop_assert_eq!(total, range.width() as u128 + u128::from(range.width() == u64::MAX));
    }

    /// Samplers only produce ranks inside their domain, for every skew
    /// regime (uniform, YCSB 0<θ<1, exact θ≥1) and scrambling choice.
    #[test]
    fn samplers_respect_domain(
        n in 1u64..5_000,
        theta in 0.0f64..2.0,
        scrambled in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let sampler = KeySampler::new(n, KeyDist::Zipfian { theta }, scrambled);
        let mut rng = Prng::new(seed);
        for _ in 0..200 {
            prop_assert!(sampler.sample(&mut rng) < n);
        }
    }

    /// The key hash never collides on distinct short keys often enough to
    /// matter (no collisions across any 500 distinct generated keys).
    #[test]
    fn hash_distinct_on_distinct_keys(keys in proptest::collection::hash_set(
        proptest::collection::vec(any::<u8>(), 1..24),
        2..500,
    )) {
        let mut hashes: Vec<u64> = keys.iter().map(|k| key_hash(k)).collect();
        hashes.sort_unstable();
        let before = hashes.len();
        hashes.dedup();
        prop_assert_eq!(hashes.len(), before, "64-bit hash collided on small set");
    }

    /// Identical seeds give identical streams; different seeds diverge.
    #[test]
    fn prng_streams(seed in any::<u64>()) {
        let mut a = Prng::new(seed);
        let mut b = Prng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(seed ^ 1);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        prop_assert!(same < 4);
    }
}
