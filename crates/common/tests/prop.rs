//! Property tests for the foundation types: histogram accuracy, range
//! splitting, and sampler domains.
//!
//! Offline note: this environment cannot fetch `proptest`, so these are
//! seeded randomized property tests driven by the workspace's own
//! deterministic [`Prng`]. Each test runs many independent cases from
//! fixed seeds, so failures reproduce exactly.

use rocksteady_common::rng::Prng;
use rocksteady_common::zipf::{KeyDist, KeySampler};
use rocksteady_common::{key_hash, HashRange, Histogram};

const CASES: u64 = 96;

/// Histogram percentiles track the exact (sorted) percentile within the
/// documented 1/64 relative-error bound.
#[test]
fn histogram_percentiles_within_resolution() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x1157_0000 + seed);
        let n = rng.next_range(1, 500) as usize;
        let mut values: Vec<u64> = (0..n).map(|_| rng.next_range(1, 10_000_000 - 1)).collect();
        let q = rng.next_f64();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let idx = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len()) - 1;
        let exact = values[idx] as f64;
        let approx = h.percentile(q) as f64;
        // The estimate is the bucket's upper edge, clamped to observed
        // min/max: it may exceed the exact value by one bucket width.
        assert!(
            approx >= exact * (1.0 - 1.0 / 64.0) - 1.0,
            "seed {seed}: approx {approx} far below exact {exact}"
        );
        assert!(
            approx <= exact * (1.0 + 2.0 / 64.0) + 1.0,
            "seed {seed}: approx {approx} far above exact {exact}"
        );
    }
}

/// Merging histograms equals recording the union.
#[test]
fn histogram_merge_is_union() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x2157_0000 + seed);
        let gen = |rng: &mut Prng| -> Vec<u64> {
            let n = rng.next_below(200) as usize;
            (0..n).map(|_| rng.next_range(1, 1_000_000 - 1)).collect()
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hu.count());
        assert_eq!(ha.min(), hu.min());
        assert_eq!(ha.max(), hu.max());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            assert_eq!(ha.percentile(q), hu.percentile(q), "seed {seed}, q {q}");
        }
    }
}

/// Range splits cover the whole input range exactly once.
#[test]
fn split_is_a_partition() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x3157_0000 + seed);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (start, end) = if a <= b { (a, b) } else { (b, a) };
        let n = rng.next_range(1, 31) as usize;
        let range = HashRange { start, end };
        let parts = range.split(n);
        assert_eq!(parts.len(), n);
        let nonempty: Vec<_> = parts.iter().filter(|p| !p.is_empty()).collect();
        assert_eq!(nonempty.first().map(|p| p.start), Some(start));
        assert_eq!(nonempty.last().map(|p| p.end), Some(end));
        for w in nonempty.windows(2) {
            assert_eq!(
                w[0].end.wrapping_add(1),
                w[1].start,
                "seed {seed}: gap or overlap"
            );
        }
        // Width conservation (empty ranges contribute zero).
        let total: u128 = nonempty.iter().map(|p| p.width() as u128).sum();
        assert_eq!(
            total,
            range.width() as u128 + u128::from(range.width() == u64::MAX)
        );
    }
}

/// Samplers only produce ranks inside their domain, for every skew regime
/// (uniform, YCSB 0<θ<1, exact θ≥1) and scrambling choice.
#[test]
fn samplers_respect_domain() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x4157_0000 + seed);
        let n = rng.next_range(1, 5_000 - 1);
        let theta = rng.next_f64() * 2.0;
        let scrambled = rng.next_u64() & 1 == 0;
        let sampler = KeySampler::new(n, KeyDist::Zipfian { theta }, scrambled);
        let mut sample_rng = Prng::new(rng.next_u64());
        for _ in 0..200 {
            assert!(sampler.sample(&mut sample_rng) < n, "seed {seed}");
        }
    }
}

/// The key hash never collides on distinct short keys often enough to
/// matter (no collisions across any 500 distinct generated keys).
#[test]
fn hash_distinct_on_distinct_keys() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x5157_0000 + seed);
        let count = rng.next_range(2, 499) as usize;
        let mut keys = std::collections::HashSet::new();
        while keys.len() < count {
            let len = rng.next_range(1, 23) as usize;
            let key: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            keys.insert(key);
        }
        let mut hashes: Vec<u64> = keys.iter().map(|k| key_hash(k)).collect();
        hashes.sort_unstable();
        let before = hashes.len();
        hashes.dedup();
        assert_eq!(
            hashes.len(),
            before,
            "seed {seed}: 64-bit hash collided on small set"
        );
    }
}

/// Identical seeds give identical streams; different seeds diverge.
#[test]
fn prng_streams() {
    for case in 0..CASES {
        let seed = Prng::new(case).next_u64();
        let mut a = Prng::new(seed);
        let mut b = Prng::new(seed);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::new(seed ^ 1);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "seed {seed}: streams should diverge");
    }
}
