//! Latency histograms and timeline recording.
//!
//! The paper's evaluation reports medians and 99.9th percentiles, both as
//! aggregates and as per-second timelines (Figures 10, 13). [`Histogram`]
//! is an HDR-style log-bucketed histogram with ≤ 1.6% relative error —
//! ample for tail percentiles — and [`TimeSeries`] slices a run into fixed
//! virtual-time intervals, keeping one histogram per interval so a single
//! pass produces the paper's timeline plots.

use crate::time::Nanos;

/// Number of linear sub-buckets per power-of-two range (2^6 = 64 gives a
/// worst-case relative error of 1/64 ≈ 1.6% per recorded value).
const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Highest representable power-of-two exponent; values above saturate into
/// the last bucket. 2^62 ns ≈ 146 years of virtual time.
const MAX_INDEX: usize = ((63 - SUB_BITS as usize) + 1) * SUB_COUNT as usize;

/// A log-bucketed histogram of `u64` values (typically nanoseconds).
///
/// # Examples
///
/// ```
/// use rocksteady_common::Histogram;
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40, 50] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.percentile(0.50), 30);
/// assert_eq!(h.max(), 50);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Lowest touched bucket index (`usize::MAX` when empty): scans
    /// (percentile, delta, merge) walk only `[lo, hi]` instead of the
    /// full ~3 700-bucket array — the samplers diff and rank histograms
    /// every virtual millisecond.
    lo: usize,
    hi: usize,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; MAX_INDEX + 1],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            lo: usize::MAX,
            hi: 0,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_COUNT {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as u64;
        let sub = (value >> (msb - SUB_BITS as u64)) & (SUB_COUNT - 1);
        let idx = ((msb - SUB_BITS as u64 + 1) * SUB_COUNT + sub) as usize;
        idx.min(MAX_INDEX)
    }

    /// Lower bound of the bucket at `idx` (inverse of [`Self::index_of`]).
    fn bucket_low(idx: usize) -> u64 {
        let b = idx as u64 >> SUB_BITS;
        let sub = idx as u64 & (SUB_COUNT - 1);
        if b == 0 {
            sub
        } else {
            (SUB_COUNT + sub) << (b - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        self.counts[idx] += n;
        self.lo = self.lo.min(idx);
        self.hi = self.hi.max(idx);
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]` (e.g. `0.999` for the 99.9th
    /// percentile), within the bucket resolution. Returns 0 if empty.
    ///
    /// The returned value is the *upper* edge of the bucket containing the
    /// quantile, clamped to the exact observed max — matching how latency
    /// SLAs are usually read ("99.9% of requests finished within X").
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self
            .counts
            .iter()
            .enumerate()
            .take(self.hi + 1)
            .skip(self.lo)
        {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                let hi = if idx >= MAX_INDEX {
                    self.max
                } else {
                    Self::bucket_low(idx + 1).saturating_sub(1)
                };
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience for the pair of statistics every figure reports.
    pub fn median_and_p999(&self) -> (u64, u64) {
        (self.percentile(0.50), self.percentile(0.999))
    }

    /// Sum of all observations, saturating at `u64::MAX` (exposition
    /// formats carry 64-bit integers).
    pub fn sum_saturating(&self) -> u64 {
        u64::try_from(self.sum).unwrap_or(u64::MAX)
    }

    /// The observations recorded since `prev` was cloned from this same
    /// histogram: bucket-wise difference, with min/max rebuilt from the
    /// surviving buckets' bounds (so percentile clamping stays
    /// consistent). Buckets where `prev` somehow exceeds `self`
    /// saturate to zero rather than underflowing.
    pub fn delta_since(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        let mut first = None;
        let mut last = None;
        if self.total > 0 {
            // Any surplus bucket of `self` lies within `self`'s touched
            // range; `prev`-only buckets saturate to zero regardless.
            for idx in self.lo..=self.hi {
                let d = self.counts[idx].saturating_sub(prev.counts[idx]);
                if d > 0 {
                    out.counts[idx] = d;
                    out.total += d;
                    first.get_or_insert(idx);
                    last = Some(idx);
                }
            }
        }
        out.sum = self.sum.saturating_sub(prev.sum);
        if let (Some(first), Some(last)) = (first, last) {
            out.lo = first;
            out.hi = last;
            out.min = Self::bucket_low(first).max(self.min);
            out.max = if last >= MAX_INDEX {
                self.max
            } else {
                (Self::bucket_low(last + 1) - 1).min(self.max)
            };
        }
        out
    }

    /// Adds all observations from `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.total > 0 {
            for idx in other.lo..=other.hi {
                self.counts[idx] += other.counts[idx];
            }
            self.lo = self.lo.min(other.lo);
            self.hi = self.hi.max(other.hi);
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Discards all observations.
    pub fn clear(&mut self) {
        if self.total > 0 {
            self.counts[self.lo..=self.hi].fill(0);
        }
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.lo = usize::MAX;
        self.hi = 0;
    }
}

/// Per-interval histograms over virtual time, for timeline figures.
///
/// Values recorded at virtual time `t` land in interval `t / interval`.
/// Intervals are materialized lazily, so sparse runs stay cheap.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    interval: Nanos,
    slots: Vec<Histogram>,
}

impl TimeSeries {
    /// Creates a series with the given interval width (e.g. 1 s of virtual
    /// time per point, as the paper's timelines use).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: Nanos) -> Self {
        assert!(interval > 0, "zero interval");
        TimeSeries {
            interval,
            slots: Vec::new(),
        }
    }

    /// Interval width in nanoseconds.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    /// Records `value` as having completed at virtual time `at`.
    pub fn record(&mut self, at: Nanos, value: u64) {
        let slot = (at / self.interval) as usize;
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, Histogram::new);
        }
        self.slots[slot].record(value);
    }

    /// Number of materialized intervals.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|h| h.count() == 0)
    }

    /// Histogram for interval `i`, if materialized.
    pub fn slot(&self, i: usize) -> Option<&Histogram> {
        self.slots.get(i)
    }

    /// Iterates `(interval_start_ns, histogram)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Nanos, &Histogram)> {
        self.slots
            .iter()
            .enumerate()
            .map(move |(i, h)| (i as Nanos * self.interval, h))
    }

    /// Completed-operation throughput per interval, in ops/sec.
    pub fn throughput_series(&self) -> Vec<f64> {
        let per_sec = crate::time::SECOND as f64 / self.interval as f64;
        self.slots
            .iter()
            .map(|h| h.count() as f64 * per_sec)
            .collect()
    }

    /// Collapses the whole series into one histogram.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for h in &self.slots {
            out.merge(h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_COUNT {
            h.record(v);
        }
        // Values below SUB_COUNT land in exact unit buckets.
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.max(), SUB_COUNT - 1);
        assert_eq!(h.count(), SUB_COUNT);
    }

    #[test]
    fn index_bucket_roundtrip() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, u64::MAX >> 1] {
            let idx = Histogram::index_of(v);
            let low = Histogram::bucket_low(idx);
            let next_low = if idx < MAX_INDEX {
                Histogram::bucket_low(idx + 1)
            } else {
                u64::MAX
            };
            assert!(low <= v && v < next_low, "v={v} idx={idx} low={low}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new();
        let v = 1_234_567;
        h.record(v);
        let p = h.percentile(1.0);
        let err = (p as f64 - v as f64).abs() / v as f64;
        assert!(err <= 1.0 / 64.0 + 1e-9, "error {err}");
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50) as f64;
        let p999 = h.percentile(0.999) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.03, "p50 {p50}");
        assert!((p999 - 9_990.0).abs() / 9_990.0 < 0.03, "p999 {p999}");
        assert_eq!(h.percentile(1.0), 10_000);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert!((h.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert!(a.max() >= 500);
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(42);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn huge_values_saturate_without_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn delta_since_subtracts_buckets() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(5_000);
        let prev = h.clone();
        h.record(200);
        h.record(9_000_000);
        let d = h.delta_since(&prev);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum_saturating(), 9_000_200);
        // The delta's percentiles only see the new observations.
        assert!(d.percentile(0.0) >= 190 && d.percentile(0.0) <= 210);
        assert!(d.percentile(1.0) >= 8_900_000);
        // Delta against itself is empty.
        let z = h.delta_since(&h);
        assert_eq!(z.count(), 0);
        assert_eq!(z.percentile(0.999), 0);
    }

    #[test]
    fn timeseries_slices_by_interval() {
        let mut ts = TimeSeries::new(1_000);
        ts.record(0, 7);
        ts.record(999, 9);
        ts.record(1_000, 11);
        ts.record(5_500, 13);
        assert_eq!(ts.len(), 6);
        assert_eq!(ts.slot(0).unwrap().count(), 2);
        assert_eq!(ts.slot(1).unwrap().count(), 1);
        assert_eq!(ts.slot(5).unwrap().count(), 1);
        assert_eq!(ts.slot(3).unwrap().count(), 0);
    }

    #[test]
    fn timeseries_throughput() {
        let mut ts = TimeSeries::new(crate::time::SECOND);
        for i in 0..100 {
            ts.record(i, 1); // all within the first second
        }
        let tp = ts.throughput_series();
        assert_eq!(tp.len(), 1);
        assert!((tp[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn timeseries_merged_equals_total() {
        let mut ts = TimeSeries::new(10);
        for i in 0..1_000 {
            ts.record(i % 100, i);
        }
        assert_eq!(ts.merged().count(), 1_000);
    }
}
