//! Identifier newtypes and the primary-key hash.
//!
//! RAMCloud addresses every object by `(table id, key hash)`: tables are
//! split into tablets on contiguous *key-hash* ranges (§2, Figure 2), the
//! per-master hash table is keyed by the hash, and Rocksteady's parallel
//! Pulls partition the *source's key-hash space* (§3.1.1). A single,
//! stable 64-bit hash function is therefore load-bearing for the whole
//! system and lives here.

use std::fmt;

/// Identifies a server (a master/backup pair) within one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Identifies a table. Tables are unordered key-value namespaces that can
/// be split into tablets on key-hash boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u64);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table-{}", self.0)
    }
}

/// Identifies a secondary index on a table. Indexes are range partitioned
/// into indexlets (Figure 2) independently of the table's tablets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "index-{}", self.0)
    }
}

/// Identifies one migration run cluster-wide.
///
/// Every Rocksteady migration — operator-scripted or issued by the
/// autonomous rebalancer — carries a unique id so that the coordinator's
/// lineage bookkeeping, the target's per-run state, and the harness's
/// per-run stamps can all distinguish overlapping migrations instead of
/// assuming at most one is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MigrationId(pub u64);

impl fmt::Display for MigrationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mig-{}", self.0)
    }
}

/// A 64-bit primary-key hash.
///
/// All partitioning in the system — tablet ownership, hash-table
/// placement, and migration pull partitions — operates on this value,
/// never on raw keys.
pub type KeyHash = u64;

/// Correlates an RPC response with its request.
///
/// Unique per (client, connection) in the simulator; the fabric never
/// generates these itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RpcId(pub u64);

/// Identifies one end-to-end client request across every node it touches.
///
/// Minted once by the client that issues the operation (deterministically
/// from its actor id and per-client operation counter — no wall clock, no
/// RNG) and inherited by every RPC done on that operation's behalf:
/// retries keep the original id, and a PriorityPull issued for a waiting
/// read carries the read's id to the source. `TraceId(0)` means "no
/// causal context" (control-plane and infrastructure traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The absent trace id carried by un-attributed traffic.
    pub const NONE: TraceId = TraceId(0);

    /// Deterministically derives the trace id for operation `op` of the
    /// client running as simulation actor `client`. Actor ids are small
    /// and op counters start at 1, so `(client + 1) << 40 | op` is unique
    /// cluster-wide and never zero.
    #[must_use]
    pub fn mint(client: u64, op: u64) -> TraceId {
        TraceId(((client + 1) << 40) | (op & 0xff_ffff_ffff))
    }

    /// Whether this is a real minted id (not [`TraceId::NONE`]).
    #[must_use]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace-{:x}", self.0)
    }
}

/// Dapper-style causal context riding every RPC envelope.
///
/// Contributes zero wire bytes in the simulator (it models header slack
/// inside the fixed message header), so carrying it unconditionally can
/// never perturb the event schedule — only trace-armed runs *record* it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CausalCtx {
    /// The journey this RPC belongs to ([`TraceId::NONE`] if unattributed).
    pub trace_id: TraceId,
    /// Low 32 bits of the rpc id of the span that caused this one
    /// (0 when the client mints a fresh context).
    pub parent_span: u32,
    /// Causal depth: the client's attempt counter on first issue, and
    /// +1 for every inherited fan-out (e.g. the PriorityPull issued on
    /// behalf of a waiting read).
    pub hop: u32,
}

impl CausalCtx {
    /// The empty context carried by control-plane traffic.
    pub const NONE: CausalCtx = CausalCtx {
        trace_id: TraceId::NONE,
        parent_span: 0,
        hop: 0,
    };

    /// Derives the context for an RPC issued *on behalf of* the request
    /// identified by `parent_rpc` carrying `self` — same journey, one
    /// hop deeper.
    #[must_use]
    pub fn child(self, parent_rpc: u64) -> CausalCtx {
        CausalCtx {
            trace_id: self.trace_id,
            parent_span: parent_rpc as u32,
            hop: self.hop + 1,
        }
    }
}

/// Hashes a primary key to its [`KeyHash`].
///
/// This is a from-scratch implementation of the 64-bit finalizer-strength
/// mixing construction used by MurmurHash3/SplitMix64, applied over 8-byte
/// little-endian chunks of the key. Requirements, in order of importance:
///
/// 1. **Stable** — hashes are baked into tablet ranges and migration pull
///    partitions; the function can never change between versions.
/// 2. **Well distributed** — tablet splits assume key hashes are uniform
///    over `0..=u64::MAX` (§2); the avalanche tests below check this.
/// 3. **Cheap** — it is charged against worker time via
///    [`crate::CostModel::record_hash_ns`].
///
/// # Examples
///
/// ```
/// use rocksteady_common::key_hash;
/// let h1 = key_hash(b"user:1234");
/// let h2 = key_hash(b"user:1235");
/// assert_ne!(h1, h2);
/// assert_eq!(h1, key_hash(b"user:1234"));
/// ```
pub fn key_hash(key: &[u8]) -> KeyHash {
    // Golden-ratio-derived odd constants from the SplitMix64/Murmur3
    // lineage; any high-entropy odd constants work, these are the
    // standard, well-studied ones.
    const C1: u64 = 0xff51_afd7_ed55_8ccd;
    const C2: u64 = 0xc4ce_b9fe_1a85_ec53;

    let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ (key.len() as u64);
    let mut chunks = key.chunks_exact(8);
    for chunk in &mut chunks {
        // Unwrap is fine: `chunks_exact(8)` always yields 8-byte slices.
        let k = u64::from_le_bytes(chunk.try_into().unwrap());
        h ^= mix(k);
        h = h.rotate_left(27).wrapping_mul(5).wrapping_add(0x52dc_e729);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= mix(u64::from_le_bytes(tail));
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(C1);
    h ^= h >> 33;
    h = h.wrapping_mul(C2);
    h ^ (h >> 33)
}

/// One round of 64-bit mixing (Murmur3 `fmix64`).
#[inline]
fn mix(mut k: u64) -> u64 {
    k = k.wrapping_mul(0x87c3_7b91_1142_53d5);
    k = k.rotate_left(31);
    k.wrapping_mul(0x4cf5_ad43_2745_937f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(key_hash(b"alpha"), key_hash(b"alpha"));
        assert_eq!(key_hash(b""), key_hash(b""));
    }

    #[test]
    fn hash_differs_for_adjacent_keys() {
        // Sequential keys (the common YCSB pattern) must spread across the
        // full hash space; sample a few and require distinct high bits.
        let hashes: Vec<u64> = (0..64u64)
            .map(|i| key_hash(format!("user{i:08}").as_bytes()))
            .collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "collision among 64 keys");
    }

    #[test]
    fn hash_depends_on_length() {
        // A key and the same key zero-padded must differ; the tail block is
        // zero-padded internally so the length must break the tie.
        assert_ne!(key_hash(b"ab"), key_hash(b"ab\0"));
        assert_ne!(key_hash(b""), key_hash(b"\0"));
    }

    #[test]
    fn hash_distributes_over_buckets() {
        // Chi-squared-lite: hashing 10k sequential keys into 64 buckets
        // should land within 3x of the expected count per bucket.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            let h = key_hash(format!("key-{i}").as_bytes());
            buckets[(h >> 58) as usize] += 1;
        }
        let expect = 10_000 / 64;
        for (b, &count) in buckets.iter().enumerate() {
            assert!(
                count > expect / 3 && count < expect * 3,
                "bucket {b} has {count}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn avalanche_single_bit_flip() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = key_hash(b"avalanche-test-key");
        let mut input = *b"avalanche-test-key";
        input[3] ^= 1;
        let flipped = key_hash(&input);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "only {differing} bits differ"
        );
    }

    #[test]
    fn display_impls() {
        assert_eq!(ServerId(3).to_string(), "server-3");
        assert_eq!(TableId(9).to_string(), "table-9");
        assert_eq!(IndexId(2).to_string(), "index-2");
        assert_eq!(MigrationId(7).to_string(), "mig-7");
        assert_eq!(TraceId(0xab).to_string(), "trace-ab");
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for client in 0..8u64 {
            for op in 1..=256u64 {
                let t = TraceId::mint(client, op);
                assert!(t.is_some(), "minted id must never be NONE");
                assert!(seen.insert(t), "collision for client {client} op {op}");
            }
        }
    }

    #[test]
    fn causal_child_keeps_trace_and_deepens() {
        let root = CausalCtx {
            trace_id: TraceId::mint(2, 7),
            parent_span: 0,
            hop: 1,
        };
        let child = root.child(0x1_2345_6789);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.hop, 2);
        assert_eq!(child.parent_span, 0x2345_6789);
        assert_eq!(CausalCtx::NONE.trace_id, TraceId::NONE);
    }
}
