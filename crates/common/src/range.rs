//! Key-hash ranges and scan cursors.
//!
//! Tablets (§2), migration pull partitions (§3.1.1), and recovery
//! assignments are all *inclusive ranges of 64-bit key-hash space*. The
//! types live here (rather than in the hash-table crate) because they
//! travel inside RPC messages: a Pull carries its partition's range and a
//! resumable [`ScanCursor`], which is how the source stays completely
//! stateless during migration (§3).

use crate::ids::KeyHash;

/// An inclusive range of key-hash space, `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashRange {
    /// Lowest hash in the range.
    pub start: KeyHash,
    /// Highest hash in the range (inclusive).
    pub end: KeyHash,
}

impl HashRange {
    /// The entire 64-bit hash space.
    pub fn full() -> Self {
        HashRange {
            start: 0,
            end: KeyHash::MAX,
        }
    }

    /// An empty range (contains no hashes).
    pub fn empty() -> Self {
        HashRange { start: 1, end: 0 }
    }

    /// Whether `hash` falls inside this range.
    pub fn contains(&self, hash: KeyHash) -> bool {
        self.start <= hash && hash <= self.end
    }

    /// Whether this range shares any hash with `other`.
    ///
    /// Empty ranges overlap nothing. Used by the coordinator and the
    /// migration target to reject splits and migrations over a range that
    /// is already in flight.
    pub fn overlaps(&self, other: &HashRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start <= other.end && other.start <= self.end
    }

    /// Whether the range contains no hashes.
    pub fn is_empty(&self) -> bool {
        self.start > self.end
    }

    /// Number of hashes in the range (saturating at `u64::MAX` for the
    /// full range).
    pub fn width(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.end - self.start).saturating_add(1)
        }
    }

    /// Splits this range into `n` near-equal contiguous partitions.
    ///
    /// Used by the migration manager to create the disjoint pull
    /// partitions (§3.1.1; the paper's evaluation uses 8) and by the
    /// cluster harness to split tables into tablets.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split(&self, n: usize) -> Vec<HashRange> {
        assert!(n > 0, "cannot split into zero partitions");
        let span = self.end - self.start; // inclusive width minus one
        let width = (span as u128 + 1) / n as u128;
        let mut out = Vec::with_capacity(n);
        let mut start = self.start;
        for i in 0..n {
            let end = if i == n - 1 {
                self.end
            } else {
                // width >= 1 unless the range is tiny; clamp to keep
                // partitions non-overlapping and exhaustive either way.
                let e = start as u128 + width.max(1) - 1;
                (e.min(self.end as u128)) as KeyHash
            };
            out.push(HashRange { start, end });
            if end == self.end {
                // Degenerate tiny range: remaining partitions are empty.
                for _ in i + 1..n {
                    out.push(HashRange::empty());
                }
                break;
            }
            start = end + 1;
        }
        out
    }
}

/// Resumable position for a partitioned hash-table scan: the next bucket
/// index to visit. Travels inside Pull RPCs so the source keeps no
/// per-migration state (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ScanCursor {
    /// Next bucket index to visit.
    pub bucket: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_contains_extremes() {
        let r = HashRange::full();
        assert!(r.contains(0));
        assert!(r.contains(u64::MAX));
        assert_eq!(r.width(), u64::MAX);
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = HashRange::empty();
        assert!(r.is_empty());
        assert!(!r.contains(0));
        assert_eq!(r.width(), 0);
    }

    #[test]
    fn split_covers_disjointly() {
        for n in [1, 2, 3, 7, 8, 16] {
            let parts = HashRange::full().split(n);
            assert_eq!(parts.len(), n);
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end, u64::MAX);
            for w in parts.windows(2) {
                assert_eq!(w[0].end + 1, w[1].start, "gap/overlap in split({n})");
            }
        }
    }

    #[test]
    fn split_half_is_halves() {
        let parts = HashRange::full().split(2);
        assert_eq!(parts[0].end, u64::MAX / 2);
        assert_eq!(parts[1].start, u64::MAX / 2 + 1);
    }

    #[test]
    fn split_tiny_range_pads_with_empties() {
        let parts = HashRange { start: 10, end: 12 }.split(8);
        assert_eq!(parts.len(), 8);
        let covered: Vec<u64> = parts
            .iter()
            .filter(|p| !p.is_empty())
            .flat_map(|p| p.start..=p.end)
            .collect();
        assert_eq!(covered, vec![10, 11, 12]);
    }
}
