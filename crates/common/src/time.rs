//! Virtual-time units.
//!
//! The simulator clock ticks in nanoseconds. RAMCloud's interesting
//! behaviour happens between ~100 ns (a hash-table probe) and ~100 s (a
//! full experiment run), all of which fits comfortably in a `u64`.

/// A point in, or duration of, virtual time, in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;

/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;

/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Formats a duration with an adaptive unit, for human-readable reports.
///
/// # Examples
///
/// ```
/// use rocksteady_common::time::fmt_nanos;
/// assert_eq!(fmt_nanos(650), "650ns");
/// assert_eq!(fmt_nanos(6_500), "6.5us");
/// assert_eq!(fmt_nanos(2_500_000), "2.50ms");
/// assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
/// ```
pub fn fmt_nanos(ns: Nanos) -> String {
    if ns < MICROSECOND {
        format!("{ns}ns")
    } else if ns < MILLISECOND {
        format!("{:.1}us", ns as f64 / MICROSECOND as f64)
    } else if ns < SECOND {
        format!("{:.2}ms", ns as f64 / MILLISECOND as f64)
    } else {
        format!("{:.2}s", ns as f64 / SECOND as f64)
    }
}

/// Converts a byte count and duration into MB/s (decimal megabytes, as the
/// paper reports migration rates).
///
/// Returns 0.0 for a zero-length interval rather than dividing by zero.
pub fn mb_per_sec(bytes: u64, elapsed: Nanos) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    (bytes as f64 / 1_000_000.0) / (elapsed as f64 / SECOND as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_per_sec_basics() {
        // 1 MB in 1 ms = 1000 MB/s.
        assert!((mb_per_sec(1_000_000, MILLISECOND) - 1000.0).abs() < 1e-9);
        assert_eq!(mb_per_sec(123, 0), 0.0);
    }

    #[test]
    fn fmt_covers_all_ranges() {
        assert_eq!(fmt_nanos(0), "0ns");
        assert_eq!(fmt_nanos(999), "999ns");
        assert_eq!(fmt_nanos(1_000), "1.0us");
        assert_eq!(fmt_nanos(999_999), "1000.0us");
        assert_eq!(fmt_nanos(1_000_000), "1.00ms");
        assert_eq!(fmt_nanos(59 * SECOND), "59.00s");
    }
}
