//! Wire-size reporting for simulated network messages.
//!
//! Lives in `common` (rather than the simulator) so message crates can
//! implement it without depending on the simulation kernel.

use crate::time::Nanos;

/// Messages crossing the simulated network report their size so the NIC
/// model can charge transmit serialization.
pub trait WireSized {
    /// Bytes this message occupies on the wire.
    fn wire_size(&self) -> u64;
}

/// A message the simulation kernel can hand to a NIC. The kernel stamps
/// the virtual send time just before computing the transmit
/// serialization, so receivers can decompose end-to-end latency into
/// network and host segments (the trace layer's per-RPC spans). The
/// default is a no-op for messages that don't carry a timestamp.
pub trait SimMessage: WireSized {
    /// Called by the kernel when the sender's NIC accepts the message.
    fn stamp_sent(&mut self, _now: Nanos) {}

    /// Called by the kernel when the message finishes serializing onto
    /// the wire (after queueing behind earlier transmissions). The gap
    /// `departed - sent` is the NIC serialization + queueing delay the
    /// profiler's critical-path analysis charges separately from
    /// propagation. Default is a no-op.
    fn stamp_departed(&mut self, _at: Nanos) {}
}
