//! Wire-size reporting for simulated network messages.
//!
//! Lives in `common` (rather than the simulator) so message crates can
//! implement it without depending on the simulation kernel.

/// Messages crossing the simulated network report their size so the NIC
/// model can charge transmit serialization.
pub trait WireSized {
    /// Bytes this message occupies on the wire.
    fn wire_size(&self) -> u64;
}
