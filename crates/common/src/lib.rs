//! Shared foundation types for the Rocksteady reproduction.
//!
//! This crate holds everything that more than one subsystem needs but that
//! belongs to none of them:
//!
//! - Identifier newtypes ([`ServerId`], [`TableId`], …) and the 64-bit key
//!   hash ([`key_hash`]) that drives tablet partitioning and the primary
//!   hash table.
//! - The [`CostModel`] used by the discrete-event simulator to convert the
//!   *real* work performed by the storage substrate (bytes copied, hash
//!   probes, checksums) into virtual service time. All constants are
//!   calibrated against the numbers reported in the paper (§2, §4).
//! - Workload-generation primitives: a deterministic [`rng`] and the YCSB
//!   [`zipf`] generators (including the high-skew θ ≥ 1 regime used in
//!   Figure 12).
//! - Measurement primitives: a log-bucketed latency [`hist::Histogram`]
//!   (sufficient resolution for 99.9th-percentile queries) and the
//!   [`hist::TimeSeries`] recorder behind the paper's timeline figures.

pub mod cost;
pub mod fxmap;
pub mod hist;
pub mod ids;
pub mod range;
pub mod rng;
pub mod time;
pub mod wire;
pub mod zipf;

pub use cost::CostModel;
pub use fxmap::{FxHashMap, FxHashSet};
pub use hist::{Histogram, TimeSeries};
pub use ids::{
    key_hash, CausalCtx, IndexId, KeyHash, MigrationId, RpcId, ServerId, TableId, TraceId,
};
pub use range::{HashRange, ScanCursor};
pub use time::{Nanos, MICROSECOND, MILLISECOND, SECOND};
pub use wire::{SimMessage, WireSized};
