//! Deterministic pseudo-random number generation.
//!
//! Every source of randomness in the simulator — workload key choice,
//! client retry jitter, Poisson arrivals — must be reproducible from a
//! single experiment seed so that reruns produce identical event traces
//! (the `determinism` integration test relies on this). [`Prng`] is a
//! from-scratch xoshiro256++ generator: small, fast, stable across
//! platforms and library versions, and splittable so each actor derives an
//! independent stream from the experiment seed.

/// A deterministic 64-bit PRNG (xoshiro256++).
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for workload generation.
///
/// # Examples
///
/// ```
/// use rocksteady_common::rng::Prng;
/// let mut a = Prng::new(42);
/// let mut b = Prng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a seed, expanding it with SplitMix64 as
    /// the xoshiro authors recommend (avoids the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Prng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// actor its own stream from the experiment seed.
    pub fn split(&mut self, label: u64) -> Prng {
        Prng::new(self.next_u64() ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        // Lemire's multiply-shift rejection method: unbiased without
        // division in the common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Samples an exponential inter-arrival gap with the given mean;
    /// used for Poisson (open-loop) request arrivals.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Avoid ln(0); next_f64 < 1 so 1-u > 0.
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = Prng::new(99);
        let mut c1 = root.split(1);
        let mut c2 = root.split(2);
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::new(3);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_in_bounds_and_roughly_uniform() {
        let mut r = Prng::new(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut r = Prng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match r.next_range(3, 4) {
                3 => saw_lo = true,
                4 => saw_hi = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Prng::new(6);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.8..5.2).contains(&mean), "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn below_zero_panics() {
        Prng::new(0).next_below(0);
    }
}
