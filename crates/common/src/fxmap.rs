//! A fast non-cryptographic hasher for interior bookkeeping maps.
//!
//! The simulator's hot paths are full of small maps keyed by RPC ids,
//! segment ids, and actor ids — all plain integers generated internally,
//! never attacker-controlled. `std`'s default SipHash defends against
//! HashDoS the simulator doesn't face and costs a measurable slice of
//! every event's budget. [`FxHashMap`] swaps in the multiply-rotate mix
//! rustc itself uses for its internal tables.
//!
//! **Do not** use this for maps whose iteration order leaks into
//! simulated behavior (event schedules, exported artifacts): iteration
//! order differs from `std`'s default and from prior runs of itself
//! across key sets. Every current use either never iterates or reduces
//! iteration to an order-insensitive fold (sum) or a sorted collect.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-hash ("Fx") mixing function: rotate, xor, multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Construct with
/// `FxHashMap::default()` (there is no `new()` for custom hashers).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_map() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        assert_eq!(m.insert(7, "a"), None);
        assert_eq!(m.insert(7, "b"), Some("a"));
        m.insert(u64::MAX, "edge");
        assert_eq!(m.get(&7), Some(&"b"));
        assert_eq!(m.remove(&u64::MAX), Some("edge"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tuple_and_byte_keys_hash_distinctly() {
        let mut m: FxHashMap<(usize, u64), u32> = FxHashMap::default();
        for a in 0..32usize {
            for b in 0..32u64 {
                m.insert((a, b), (a as u32) * 100 + b as u32);
            }
        }
        assert_eq!(m.len(), 32 * 32);
        assert_eq!(m.get(&(3, 4)), Some(&304));
        let mut s: FxHashSet<Vec<u8>> = FxHashSet::default();
        assert!(s.insert(b"user123".to_vec()));
        assert!(!s.insert(b"user123".to_vec()));
        assert!(s.insert(b"user124".to_vec()));
    }
}
