//! Zipfian and uniform key-rank samplers (YCSB-compatible).
//!
//! The paper's evaluation drives YCSB-B with Zipfian-distributed keys at
//! θ = 0.99 (§4.1) and sweeps θ ∈ {0, 0.5, 0.99, 1.5} in Figure 12. YCSB's
//! classic O(1) approximation (Gray et al.) only covers 0 < θ < 1, so this
//! module provides:
//!
//! - [`Zipfian`]: the YCSB generator for `0 < θ < 1`,
//! - [`TableZipf`]: an exact inverse-CDF sampler for any `θ > 0`
//!   (required for the θ = 1.5 point in Figure 12),
//! - [`KeySampler`]: the façade that picks the right implementation and
//!   optionally *scrambles* ranks (YCSB's `ScrambledZipfianGenerator`) so
//!   hot keys are spread across the key-hash space rather than clustered —
//!   exactly the situation Rocksteady's hash-partitioned Pulls face.

use crate::ids::key_hash;
use crate::rng::Prng;

/// YCSB's O(1) Zipfian rank generator for skew `0 < θ < 1`.
///
/// Produces ranks in `[0, n)` where rank 0 is the hottest item, using the
/// closed-form approximation from Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases" (the algorithm YCSB ships).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator over `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 0` and `0 < theta < 1` (use [`TableZipf`] for
    /// θ ≥ 1 and [`KeySampler`] to dispatch automatically).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "YCSB zipfian requires 0 < theta < 1, got {theta}"
        );
        let zeta_n = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
        }
    }

    /// Samples a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Prng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Harmonic partial sum Σ_{i=1..n} i^{-θ}.
fn zeta(n: u64, theta: f64) -> f64 {
    // For the table sizes in this repo (≤ tens of millions) a direct sum
    // is affordable and exact; it runs once per generator.
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// Exact inverse-CDF Zipf sampler for any skew `θ > 0`.
///
/// Precomputes the cumulative distribution over all `n` ranks and samples
/// with a binary search — O(log n) per sample, exact for every θ
/// including the θ ≥ 1 regime YCSB's approximation cannot handle.
#[derive(Debug, Clone)]
pub struct TableZipf {
    cdf: Vec<f64>,
}

impl TableZipf {
    /// Builds the CDF table for `n` items with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta <= 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        assert!(theta > 0.0, "theta must be positive");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        TableZipf { cdf }
    }

    /// Samples a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Prng) -> u64 {
        let u = rng.next_f64();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose cumulative mass reaches u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// How client workloads choose keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every rank equally likely (θ = 0 in Figure 12).
    Uniform,
    /// Zipf-distributed ranks with the given skew θ.
    Zipfian { theta: f64 },
}

/// Samples key *ranks* for a workload, optionally scrambled.
///
/// With `scrambled = true` (the YCSB default used in §4.1) the sampled
/// popularity rank is hashed into a stable pseudo-random position in
/// `[0, n)`, so popular keys are scattered over the whole table rather
/// than being the lexicographically-first ones.
#[derive(Debug, Clone)]
pub struct KeySampler {
    n: u64,
    scrambled: bool,
    inner: SamplerImpl,
}

#[derive(Debug, Clone)]
enum SamplerImpl {
    Uniform,
    Ycsb(Zipfian),
    Table(TableZipf),
}

impl KeySampler {
    /// Builds a sampler over `n` keys with the given distribution.
    ///
    /// Dispatches on θ: uniform for θ = 0 (or [`KeyDist::Uniform`]), the
    /// O(1) YCSB generator for 0 < θ < 1, and the exact table sampler for
    /// θ ≥ 1.
    pub fn new(n: u64, dist: KeyDist, scrambled: bool) -> Self {
        let inner = match dist {
            KeyDist::Uniform => SamplerImpl::Uniform,
            KeyDist::Zipfian { theta } if theta <= 0.0 => SamplerImpl::Uniform,
            KeyDist::Zipfian { theta } if theta < 1.0 => SamplerImpl::Ycsb(Zipfian::new(n, theta)),
            KeyDist::Zipfian { theta } => SamplerImpl::Table(TableZipf::new(n, theta)),
        };
        KeySampler {
            n,
            scrambled,
            inner,
        }
    }

    /// Number of keys in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Samples a key index in `[0, n)`.
    pub fn sample(&self, rng: &mut Prng) -> u64 {
        let rank = match &self.inner {
            SamplerImpl::Uniform => rng.next_below(self.n),
            SamplerImpl::Ycsb(z) => z.sample(rng),
            SamplerImpl::Table(t) => t.sample(rng),
        };
        if self.scrambled {
            key_hash(&rank.to_le_bytes()) % self.n
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_mass(sampler: &KeySampler, head: u64, samples: u64) -> f64 {
        let mut rng = Prng::new(11);
        let mut hits = 0u64;
        for _ in 0..samples {
            if sampler.sample(&mut rng) < head {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }

    #[test]
    fn uniform_head_mass_is_proportional() {
        let s = KeySampler::new(1_000, KeyDist::Uniform, false);
        let m = head_mass(&s, 100, 100_000);
        assert!((0.08..0.12).contains(&m), "mass {m}");
    }

    #[test]
    fn ycsb_zipfian_is_skewed() {
        // θ=0.99 over 10k keys: top 1% of ranks should carry far more than
        // 1% of accesses (analytically ~59%).
        let s = KeySampler::new(10_000, KeyDist::Zipfian { theta: 0.99 }, false);
        let m = head_mass(&s, 100, 100_000);
        assert!(m > 0.45, "head mass only {m}");
    }

    #[test]
    fn theta_half_less_skewed_than_099() {
        let s05 = KeySampler::new(10_000, KeyDist::Zipfian { theta: 0.5 }, false);
        let s99 = KeySampler::new(10_000, KeyDist::Zipfian { theta: 0.99 }, false);
        assert!(head_mass(&s05, 100, 50_000) < head_mass(&s99, 100, 50_000));
    }

    #[test]
    fn high_skew_table_sampler() {
        // θ=1.5 (Figure 12's hottest point): rank 0 alone should carry a
        // large share (analytically 1/ζ(1.5) over 10k ≈ 38%).
        let s = KeySampler::new(10_000, KeyDist::Zipfian { theta: 1.5 }, false);
        let m = head_mass(&s, 1, 50_000);
        assert!((0.30..0.48).contains(&m), "rank-0 mass {m}");
    }

    #[test]
    fn samples_stay_in_domain() {
        for theta in [0.0, 0.5, 0.99, 1.5] {
            let s = KeySampler::new(97, KeyDist::Zipfian { theta }, true);
            let mut rng = Prng::new(5);
            for _ in 0..10_000 {
                assert!(s.sample(&mut rng) < 97);
            }
        }
    }

    #[test]
    fn scrambling_moves_the_hot_key_but_keeps_skew() {
        let plain = KeySampler::new(10_000, KeyDist::Zipfian { theta: 0.99 }, false);
        let scram = KeySampler::new(10_000, KeyDist::Zipfian { theta: 0.99 }, true);
        // The scrambled hot key is (almost surely) not rank 0.
        let mut rng = Prng::new(13);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(scram.sample(&mut rng)).or_insert(0u32) += 1;
        }
        let (&hot, &hot_count) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_ne!(hot, 0, "scrambling left the hot key at rank 0");
        // Skew preserved: the hottest key still dominates.
        assert!(hot_count > 2_000, "hot key only drew {hot_count}/50000");
        // And the unscrambled generator's hot key *is* rank 0.
        let mut rng2 = Prng::new(13);
        let mut zero_hits = 0;
        for _ in 0..50_000 {
            if plain.sample(&mut rng2) == 0 {
                zero_hits += 1;
            }
        }
        assert!(zero_hits > 2_000);
    }

    #[test]
    fn zeta_small_values() {
        assert!((zeta(1, 0.5) - 1.0).abs() < 1e-12);
        let z2 = zeta(2, 0.5);
        assert!((z2 - (1.0 + 1.0 / 2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "0 < theta < 1")]
    fn ycsb_rejects_theta_one() {
        Zipfian::new(10, 1.0);
    }
}
