//! The calibrated cost model that turns real work into virtual time.
//!
//! The reproduction executes the storage substrate for real (records are
//! appended into segmented logs, copied into pull buffers, replayed into
//! hash tables) but runs under a discrete-event clock. Every operation
//! reports what it did — bytes copied, hash probes, checksummed bytes —
//! and the simulated server charges virtual time for that work using the
//! constants here.
//!
//! # Calibration
//!
//! Constants are calibrated so that the *baseline* system reproduces the
//! paper's anchor measurements on its CloudLab c6220 cluster (Table 1):
//!
//! | Anchor (paper) | Where it comes from here |
//! |---|---|
//! | 6 µs end-to-end read (§2) | 2 × [`net_one_way_ns`] + [`dispatch_per_msg_ns`] + read service + client overhead |
//! | 15 µs durable write (§2) | read path + synchronous 3-way segment replication |
//! | ~380 MB/s replication ceiling (§2.3) | [`replication_bytes_per_ns`] serializing the replication manager |
//! | 5.7 GB/s source pull processing, 128 B records, 12+ workers (§4.5) | [`pull_per_record_ns`] + per-byte costs |
//! | 3 GB/s target replay, 128 B records, 12+ workers (§4.5) | [`replay_per_record_ns`] + per-byte costs |
//! | 5 GB/s line rate, 40 Gbps NICs (Table 1) | [`net_bytes_per_ns`] |
//!
//! [`net_one_way_ns`]: CostModel::net_one_way_ns
//! [`dispatch_per_msg_ns`]: CostModel::dispatch_per_msg_ns
//! [`replication_bytes_per_ns`]: CostModel::replication_bytes_per_ns
//! [`pull_per_record_ns`]: CostModel::pull_per_record_ns
//! [`replay_per_record_ns`]: CostModel::replay_per_record_ns
//! [`net_bytes_per_ns`]: CostModel::net_bytes_per_ns

use crate::time::Nanos;

/// Per-operation virtual-time costs for the simulated cluster.
///
/// The default values reproduce the paper's testbed (see module docs).
/// Experiments that sweep a hardware lever (e.g. Figure 5's "Skip Copy for
/// Tx") clone the model and change one field.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---------------------------------------------------------- network --
    /// One-way propagation + switching + NIC traversal latency between any
    /// two servers, in nanoseconds. One ToR switch, kernel-bypass NICs.
    pub net_one_way_ns: Nanos,
    /// NIC line rate in bytes per nanosecond (5.0 = 40 Gbps ≈ 5 GB/s).
    /// Transmit serialization: a message of `n` bytes occupies the sender
    /// NIC for `n / net_bytes_per_ns` nanoseconds.
    pub net_bytes_per_ns: f64,
    /// Client-library overhead per RPC (request marshalling + response
    /// demarshalling on the client's own CPU).
    pub client_rpc_overhead_ns: Nanos,

    // --------------------------------------------------------- dispatch --
    /// Dispatch-core cost to poll, classify, and hand off one inbound
    /// message. This is the resource that saturates in Figure 3.
    pub dispatch_per_msg_ns: Nanos,
    /// Dispatch-core cost to post one outbound message to the transport.
    pub dispatch_tx_per_msg_ns: Nanos,
    /// Dispatch-core cost for one migration-manager continuation check
    /// (scoreboard scan + possibly issuing a Pull) — §3.1.2 runs the
    /// manager on the dispatch core, so this charges dispatch time.
    pub migration_mgr_check_ns: Nanos,

    // ------------------------------------------------------- worker ops --
    /// Fixed worker cost per serviced RPC (argument parsing, response
    /// header construction).
    pub op_fixed_ns: Nanos,
    /// Worker cost per object read: hash-table lookup + log dereference +
    /// copy-out is charged separately per byte/probe.
    pub read_per_object_ns: Nanos,
    /// Worker cost per object write: log append bookkeeping + hash-table
    /// update, excluding replication (charged separately).
    pub write_per_object_ns: Nanos,
    /// Cost per hash-table probe beyond the first (collision chains and
    /// replay inserts take cache misses; §4.5 calls these out).
    pub hash_probe_ns: Nanos,
    /// Cost to compute the 64-bit key hash of one record.
    pub record_hash_ns: Nanos,
    /// Per-byte cost of copying a record through memory (staging
    /// buffers, copy-out): raw memcpy plus the allocation and cache
    /// misses that come with gathering scattered log entries. Calibrated
    /// from Figure 5's copy lever: dropping the staging copy takes the
    /// baseline from 710 MB/s to 1150 MB/s for ~160 B records, i.e.
    /// ~0.35 ns/B of copy-path cost.
    pub per_byte_copy_ns: f64,
    /// Per-byte checksum cost (log-entry CRCs on append and replay).
    pub per_byte_checksum_ns: f64,
    /// B-tree descent cost for one secondary-index lookup.
    pub index_lookup_ns: Nanos,
    /// Per-entry cost while scanning a secondary index range.
    pub index_scan_per_entry_ns: Nanos,

    // ------------------------------------------------------ replication --
    /// Throughput ceiling of a master's replication manager in bytes per
    /// nanosecond (0.38 = 380 MB/s, §2.3). Segment replication work
    /// serializes behind this resource regardless of worker parallelism.
    pub replication_bytes_per_ns: f64,
    /// Fixed backup-side cost to accept one replication RPC.
    pub backup_fixed_ns: Nanos,
    /// Per-byte backup-side cost to buffer replicated data.
    pub backup_per_byte_ns: f64,
    /// Number of replicas each log segment keeps on backups.
    pub replicas: u32,

    // -------------------------------------------------------- migration --
    /// Source-side cost per log entry examined by the *baseline*
    /// migration's sequential log scan (§2.3 — identification only; the
    /// "Skip Copy for Tx" curve of Figure 5 is this cost alone, measured
    /// at ~1.15 GB/s for 128 B records on one core).
    pub log_scan_per_entry_ns: Nanos,
    /// Fixed source-side worker cost per Pull RPC (locating the partition
    /// cursor, building the response skeleton).
    pub pull_fixed_ns: Nanos,
    /// Source-side worker cost per record gathered into a Pull response
    /// (hash-bucket walk + liveness check), excluding per-byte costs.
    pub pull_per_record_ns: Nanos,
    /// Target-side worker cost per record replayed (side-log append +
    /// hash-table insert), excluding per-byte costs.
    pub replay_per_record_ns: Nanos,
    /// Extra serialized per-record cost when replay appends into a single
    /// shared log instead of per-core side logs. Charged under a global
    /// (modeled) lock; this is the contention §3.1.3 eliminates.
    pub shared_log_append_ns: Nanos,
    /// Fixed source-side cost per PriorityPull RPC.
    pub priority_pull_fixed_ns: Nanos,
    /// Source-side cost per record looked up for a PriorityPull.
    pub priority_pull_per_record_ns: Nanos,
    /// Whether the transport copies records into transmit staging buffers
    /// (the DPDK-driver copy the paper measures; §3.2). `false` models the
    /// zero-copy scatter/gather DMA path.
    pub copy_for_tx: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            net_one_way_ns: 1_800,
            net_bytes_per_ns: 5.0,
            client_rpc_overhead_ns: 600,
            dispatch_per_msg_ns: 900,
            dispatch_tx_per_msg_ns: 150,
            migration_mgr_check_ns: 50,
            op_fixed_ns: 350,
            read_per_object_ns: 650,
            write_per_object_ns: 1_100,
            hash_probe_ns: 120,
            record_hash_ns: 40,
            per_byte_copy_ns: 0.35,
            per_byte_checksum_ns: 0.25,
            index_lookup_ns: 1_200,
            index_scan_per_entry_ns: 150,
            replication_bytes_per_ns: 0.38,
            backup_fixed_ns: 1_000,
            backup_per_byte_ns: 0.05,
            replicas: 3,
            log_scan_per_entry_ns: 110,
            pull_fixed_ns: 500,
            pull_per_record_ns: 230,
            replay_per_record_ns: 420,
            shared_log_append_ns: 260,
            priority_pull_fixed_ns: 400,
            priority_pull_per_record_ns: 250,
            copy_for_tx: true,
        }
    }
}

impl CostModel {
    /// Time the sender NIC is occupied transmitting `bytes` on the wire.
    pub fn wire_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 / self.net_bytes_per_ns).round() as Nanos
    }

    /// Per-byte cost of copying `bytes` through memory.
    pub fn copy_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 * self.per_byte_copy_ns).round() as Nanos
    }

    /// Per-byte cost of checksumming `bytes`.
    pub fn checksum_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 * self.per_byte_checksum_ns).round() as Nanos
    }

    /// Time the replication manager is occupied shipping `bytes` to all
    /// replicas. This is the serialized §2.3 bottleneck, so it covers the
    /// full replication fan-out, not a single replica.
    pub fn replication_occupancy_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 / self.replication_bytes_per_ns).round() as Nanos
    }

    /// Worker time to gather one record of `bytes` total size into a Pull
    /// response on the source (§3.1.1): bucket walk + checksum + staging
    /// copy (if the transport copies for tx).
    pub fn pull_record_ns(&self, bytes: u64) -> Nanos {
        let mut ns = self.pull_per_record_ns + self.checksum_ns(bytes);
        if self.copy_for_tx {
            ns += self.copy_ns(bytes);
        }
        ns
    }

    /// Worker time to replay one record of `bytes` total size on the
    /// target (§3.1.3): side-log append (copy) + checksum verify +
    /// hash-table insert.
    pub fn replay_record_ns(&self, bytes: u64) -> Nanos {
        self.replay_per_record_ns
            + self.checksum_ns(bytes)
            + self.copy_ns(bytes)
            + self.record_hash_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_matches_line_rate() {
        let m = CostModel::default();
        // 5 GB/s: 20 KB takes 4 us.
        assert_eq!(m.wire_ns(20_000), 4_000);
        assert_eq!(m.wire_ns(0), 0);
    }

    #[test]
    fn replication_matches_paper_ceiling() {
        let m = CostModel::default();
        // 380 MB/s: 1 MB occupies the replication manager ~2.63 ms.
        let ns = m.replication_occupancy_ns(1_000_000);
        assert!((2_500_000..2_800_000).contains(&ns), "{ns}");
    }

    #[test]
    fn source_outpaces_target_on_small_records() {
        // §4.5: source pull processing must be ~1.8-2.4x cheaper per record
        // than target replay for 128 B records.
        let m = CostModel::default();
        let pull = m.pull_record_ns(128) as f64;
        let replay = m.replay_record_ns(128) as f64;
        let ratio = replay / pull;
        assert!((1.6..=2.6).contains(&ratio), "replay/pull ratio {ratio}");
    }

    #[test]
    fn calibration_pull_replay_rates() {
        // §4.5 anchors: with 12 workers the source should sustain roughly
        // 5.7 GB/s gathering 128 B records and the target roughly 3 GB/s
        // replaying them. Allow 25% calibration slack.
        let m = CostModel::default();
        let src_gbps = 12.0 * 128.0 / m.pull_record_ns(128) as f64;
        let tgt_gbps = 12.0 * 128.0 / m.replay_record_ns(128) as f64;
        assert!((4.3..=7.2).contains(&src_gbps), "source {src_gbps} GB/s");
        assert!((2.2..=3.8).contains(&tgt_gbps), "target {tgt_gbps} GB/s");
    }

    #[test]
    fn zero_copy_reduces_pull_cost() {
        let copying = CostModel::default();
        let zero_copy = CostModel {
            copy_for_tx: false,
            ..CostModel::default()
        };
        assert!(zero_copy.pull_record_ns(1024) < copying.pull_record_ns(1024));
    }
}
