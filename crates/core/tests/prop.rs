//! Property tests for the migration protocol's core invariants.
//!
//! Offline note: this environment cannot fetch `proptest`, so these are
//! seeded randomized property tests driven by the workspace's own
//! deterministic [`Prng`]. Each test runs many independent cases from
//! fixed seeds, so failures reproduce exactly.

use std::collections::HashSet;

use bytes::Bytes;
use rocksteady::{MissOutcome, PriorityPullBatcher};
use rocksteady_common::rng::Prng;
use rocksteady_common::{HashRange, ScanCursor, TableId};
use rocksteady_master::{MasterConfig, MasterService, ReplayDest, TabletRole, Work};
use rocksteady_proto::Record;

const T: TableId = TableId(1);
const CASES: u64 = 64;

fn record(hash: u64, version: u64, value: u8, tombstone: bool) -> Record {
    Record {
        table: T,
        key_hash: hash,
        version,
        key: Bytes::copy_from_slice(&hash.to_le_bytes()),
        value: if tombstone {
            Bytes::new()
        } else {
            Bytes::from(vec![value])
        },
        tombstone,
    }
}

/// Random records over a small hash domain with unique (hash, version)
/// pairs, so "same version, different payload" ambiguity (impossible in
/// the real system, where a version is written once) doesn't create
/// false positives.
fn rand_records(rng: &mut Prng, max_count: u64, with_tombstones: bool) -> Vec<Record> {
    let n = rng.next_range(1, max_count);
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for _ in 0..n {
        let h = rng.next_below(16);
        let v = rng.next_range(1, 63);
        if !seen.insert((h, v)) {
            continue;
        }
        let val = rng.next_u64() as u8;
        let tomb = with_tombstones && rng.next_u64() & 1 == 0;
        out.push(record(h, v, val, tomb));
    }
    out
}

fn shuffle(records: &mut [Record], rng: &mut Prng) {
    for i in (1..records.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        records.swap(i, j);
    }
}

/// Version-max replay is order-insensitive: replaying any permutation
/// of any multiset of records (including tombstones) converges to the
/// same visible state — the invariant that makes Rocksteady's unordered
/// parallel replay and crash-recovery merge safe (§3.1.3, §3.4).
#[test]
fn replay_is_order_insensitive() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x10c0_0000 + seed);
        let records = rand_records(&mut rng, 59, true);

        let run = |order: &[Record]| {
            let mut m = MasterService::new(MasterConfig::default());
            m.add_tablet(T, HashRange::full(), TabletRole::Owner);
            for r in order {
                m.replay_record(r, ReplayDest::MainLog, &mut Work::default());
            }
            // Visible state: hash -> (version, value) for live keys.
            let mut state = Vec::new();
            for h in 0u64..16 {
                let out = m.read(T, h, Some(&h.to_le_bytes()), &mut Work::default());
                state.push(out.ok().map(|(v, ver)| (ver, v.to_vec())));
            }
            state
        };

        let forward = run(&records);
        let mut shuffled = records.clone();
        shuffle(&mut shuffled, &mut rng);
        let permuted = run(&shuffled);
        assert_eq!(forward, permuted, "seed {seed}");
    }
}

/// Replaying the same records twice (duplicate pulls, retransmits)
/// changes nothing: replay is idempotent.
#[test]
fn replay_is_idempotent() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x20c0_0000 + seed);
        let records = rand_records(&mut rng, 39, false);
        let mut m = MasterService::new(MasterConfig::default());
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        for r in &records {
            m.replay_record(r, ReplayDest::MainLog, &mut Work::default());
        }
        let snapshot = |m: &MasterService| {
            (0u64..16)
                .map(|h| {
                    m.read(T, h, Some(&h.to_le_bytes()), &mut Work::default())
                        .ok()
                        .map(|(v, ver)| (ver, v.to_vec()))
                })
                .collect::<Vec<_>>()
        };
        let before = snapshot(&m);
        for r in &records {
            let applied = m.replay_record(r, ReplayDest::MainLog, &mut Work::default());
            assert!(!applied, "seed {seed}: duplicate replay must be rejected");
        }
        assert_eq!(before, snapshot(&m), "seed {seed}");
    }
}

/// The PriorityPull batcher never requests the same hash twice, never
/// exceeds the batch cap, and eventually resolves every miss to either a
/// served or an absent hash.
#[test]
fn batcher_invariants() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x30c0_0000 + seed);
        let misses: Vec<u64> = (0..rng.next_range(1, 199))
            .map(|_| rng.next_below(64))
            .collect();
        let cap = rng.next_range(1, 19) as usize;
        let source_has: HashSet<u64> = (0..rng.next_below(64))
            .map(|_| rng.next_below(64))
            .collect();

        let mut b = PriorityPullBatcher::new();
        let mut requested: Vec<u64> = Vec::new();
        let mut miss_iter = misses.iter();
        loop {
            // Interleave misses and round trips.
            for _ in 0..3 {
                if let Some(&h) = miss_iter.next() {
                    let _ = b.on_miss(h);
                }
            }
            if let Some(batch) = b.next_batch(cap) {
                assert!(batch.len() <= cap, "seed {seed}");
                requested.extend(&batch);
                let returned: Vec<u64> = batch
                    .iter()
                    .copied()
                    .filter(|h| source_has.contains(h))
                    .collect();
                b.on_response(returned);
            } else if miss_iter.len() == 0 {
                break;
            }
        }
        // Never requested the same hash twice (§3.3's guarantee).
        let mut sorted = requested.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            requested.len(),
            "seed {seed}: duplicate request"
        );
        assert!(b.is_idle(), "seed {seed}");
        // Post-drain misses resolve deterministically.
        for &h in &misses {
            match b.on_miss(h) {
                MissOutcome::NotFound => {
                    assert!(!source_has.contains(&h), "seed {seed}")
                }
                MissOutcome::Wait => {}
            }
        }
    }
}

/// Source pulls partition cleanly: gathering every partition of any
/// loaded master retrieves every record exactly once, for any batch
/// budget and partition count.
#[test]
fn pulls_cover_everything_once() {
    for seed in 0..CASES {
        let mut rng = Prng::new(0x40c0_0000 + seed);
        let keys = rng.next_range(1, 299);
        let partitions = rng.next_range(1, 9) as usize;
        let budget = rng.next_range(200, 4_999) as u32;

        let mut m = MasterService::new(MasterConfig {
            hash_buckets: 1 << 10,
            hash_stripes: 16,
            ..MasterConfig::default()
        });
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        for i in 0..keys {
            let key = format!("key{i:06}");
            m.load_object(T, key.as_bytes(), b"value");
        }
        let mut got = Vec::new();
        for part in HashRange::full().split(partitions) {
            let mut cursor = ScanCursor::default();
            loop {
                let (records, next, _) =
                    rocksteady::source::handle_pull(&m, T, part, cursor, budget);
                for r in records {
                    assert!(part.contains(r.key_hash), "seed {seed}: partition leak");
                    got.push(r.key_hash);
                }
                match next {
                    Some(c) => cursor = c,
                    None => break,
                }
            }
        }
        got.sort_unstable();
        let before = got.len();
        got.dedup();
        assert_eq!(
            got.len(),
            before,
            "seed {seed}: duplicate records across pulls"
        );
        assert_eq!(got.len() as u64, keys, "seed {seed}: records lost");
    }
}
