//! Property tests for the migration protocol's core invariants.

use bytes::Bytes;
use proptest::prelude::*;
use rocksteady::{MissOutcome, PriorityPullBatcher};
use rocksteady_common::{HashRange, ScanCursor, TableId};
use rocksteady_master::{MasterConfig, MasterService, ReplayDest, TabletRole, Work};
use rocksteady_proto::Record;

const T: TableId = TableId(1);

fn record(hash: u64, version: u64, value: u8, tombstone: bool) -> Record {
    Record {
        table: T,
        key_hash: hash,
        version,
        key: Bytes::copy_from_slice(&hash.to_le_bytes()),
        value: if tombstone {
            Bytes::new()
        } else {
            Bytes::from(vec![value])
        },
        tombstone,
    }
}

proptest! {
    /// Version-max replay is order-insensitive: replaying any permutation
    /// of any multiset of records (including tombstones) converges to the
    /// same visible state — the invariant that makes Rocksteady's
    /// unordered parallel replay and crash-recovery merge safe (§3.1.3,
    /// §3.4).
    #[test]
    fn replay_is_order_insensitive(
        records in proptest::collection::vec(
            (0u64..16, 1u64..64, any::<u8>(), any::<bool>()),
            1..60,
        ),
        seed in any::<u64>(),
    ) {
        // Deduplicate (hash, version) pairs so "same version, different
        // payload" ambiguity (impossible in the real system, where a
        // version is written once) doesn't create false positives.
        let mut seen = std::collections::HashSet::new();
        let records: Vec<Record> = records
            .into_iter()
            .filter(|(h, v, _, _)| seen.insert((*h, *v)))
            .map(|(h, v, val, tomb)| record(h, v, val, tomb))
            .collect();

        let run = |order: &[Record]| {
            let mut m = MasterService::new(MasterConfig::default());
            m.add_tablet(T, HashRange::full(), TabletRole::Owner);
            for r in order {
                m.replay_record(r, ReplayDest::MainLog, &mut Work::default());
            }
            // Visible state: hash -> (version, value) for live keys.
            let mut state = Vec::new();
            for h in 0u64..16 {
                let out = m.read(T, h, Some(&h.to_le_bytes()), &mut Work::default());
                state.push(out.ok().map(|(v, ver)| (ver, v.to_vec())));
            }
            state
        };

        let forward = run(&records);
        // A deterministic shuffle driven by the seed.
        let mut shuffled = records.clone();
        let mut rng = rocksteady_common::rng::Prng::new(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        let permuted = run(&shuffled);
        prop_assert_eq!(forward, permuted);
    }

    /// Replaying the same records twice (duplicate pulls, retransmits)
    /// changes nothing: replay is idempotent.
    #[test]
    fn replay_is_idempotent(
        records in proptest::collection::vec((0u64..16, 1u64..64, any::<u8>()), 1..40),
    ) {
        let records: Vec<Record> = records
            .into_iter()
            .map(|(h, v, val)| record(h, v, val, false))
            .collect();
        let mut m = MasterService::new(MasterConfig::default());
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        for r in &records {
            m.replay_record(r, ReplayDest::MainLog, &mut Work::default());
        }
        let snapshot = |m: &MasterService| {
            (0u64..16)
                .map(|h| {
                    m.read(T, h, Some(&h.to_le_bytes()), &mut Work::default())
                        .ok()
                        .map(|(v, ver)| (ver, v.to_vec()))
                })
                .collect::<Vec<_>>()
        };
        let before = snapshot(&m);
        for r in &records {
            let applied = m.replay_record(r, ReplayDest::MainLog, &mut Work::default());
            prop_assert!(!applied, "duplicate replay must be rejected");
        }
        prop_assert_eq!(before, snapshot(&m));
    }

    /// The PriorityPull batcher never requests the same hash twice, never
    /// exceeds the batch cap, and eventually resolves every miss to
    /// either a served or an absent hash.
    #[test]
    fn batcher_invariants(
        misses in proptest::collection::vec(0u64..64, 1..200),
        cap in 1usize..20,
        source_has in proptest::collection::hash_set(0u64..64, 0..64),
    ) {
        let mut b = PriorityPullBatcher::new();
        let mut requested: Vec<u64> = Vec::new();
        let mut miss_iter = misses.iter();
        loop {
            // Interleave misses and round trips.
            for _ in 0..3 {
                if let Some(&h) = miss_iter.next() {
                    let _ = b.on_miss(h);
                }
            }
            if let Some(batch) = b.next_batch(cap) {
                prop_assert!(batch.len() <= cap);
                requested.extend(&batch);
                let returned: Vec<u64> = batch
                    .iter()
                    .copied()
                    .filter(|h| source_has.contains(h))
                    .collect();
                b.on_response(returned);
            } else if miss_iter.len() == 0 {
                break;
            }
        }
        // Never requested the same hash twice (§3.3's guarantee).
        let mut sorted = requested.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), requested.len(), "duplicate request");
        prop_assert!(b.is_idle());
        // Post-drain misses resolve deterministically.
        for &h in &misses {
            match b.on_miss(h) {
                MissOutcome::NotFound => prop_assert!(!source_has.contains(&h)),
                MissOutcome::Wait => {}
            }
        }
    }

    /// Source pulls partition cleanly: gathering every partition of any
    /// loaded master retrieves every record exactly once, for any batch
    /// budget and partition count.
    #[test]
    fn pulls_cover_everything_once(
        keys in 1u64..300,
        partitions in 1usize..10,
        budget in 200u64..5_000,
    ) {
        let mut m = MasterService::new(MasterConfig {
            hash_buckets: 1 << 10,
            hash_stripes: 16,
            ..MasterConfig::default()
        });
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        for i in 0..keys {
            let key = format!("key{i:06}");
            m.load_object(T, key.as_bytes(), b"value");
        }
        let mut got = Vec::new();
        for part in HashRange::full().split(partitions) {
            let mut cursor = ScanCursor::default();
            loop {
                let (records, next, _) =
                    rocksteady::source::handle_pull(&m, T, part, cursor, budget as u32);
                for r in records {
                    prop_assert!(part.contains(r.key_hash), "partition leak");
                    got.push(r.key_hash);
                }
                match next {
                    Some(c) => cursor = c,
                    None => break,
                }
            }
        }
        got.sort_unstable();
        let before = got.len();
        got.dedup();
        prop_assert_eq!(got.len(), before, "duplicate records across pulls");
        prop_assert_eq!(got.len() as u64, keys, "records lost");
    }
}
