//! Source-side migration handlers (§3.1.1, Figure 7).
//!
//! The source keeps no migration state at all: everything needed to
//! resume a Pull travels in the RPC (partition range + cursor), so any
//! worker core can service any Pull for any partition. These functions
//! are thin, deliberately — the heavy lifting (hash-table partition
//! scans, record gathering) lives in [`MasterService`], and the server
//! actor charges the returned [`Work`] plus the fixed per-RPC costs from
//! the cost model.

use rocksteady_common::{HashRange, KeyHash, ScanCursor, ServerId, TableId};
use rocksteady_master::{MasterService, TabletRole, Work};
use rocksteady_proto::Record;

/// Marks the tablet migrating-out (immutable here; clients get
/// `UnknownTablet`) and returns the version ceiling the target must
/// allocate above (§3).
///
/// Returns `None` if this master has no tablet with exactly that range
/// (the caller should have split first — migration begins with a split,
/// §3).
pub fn handle_prepare(
    master: &mut MasterService,
    table: TableId,
    range: HashRange,
    target: ServerId,
) -> Option<u64> {
    if !master.set_tablet_role(table, range, TabletRole::MigratingOutTo { target }) {
        return None;
    }
    Some(master.version_ceiling())
}

/// Services one bulk Pull: gathers up to ~`budget_bytes` of records from
/// `range` resuming at `cursor`.
pub fn handle_pull(
    master: &MasterService,
    table: TableId,
    range: HashRange,
    cursor: ScanCursor,
    budget_bytes: u32,
) -> (Vec<Record>, Option<ScanCursor>, Work) {
    let mut work = Work::default();
    let (records, next) = master.gather_range(table, range, cursor, budget_bytes as u64, &mut work);
    (records, next, work)
}

/// Services one PriorityPull: fetches the named hashes (§3.3). Hashes
/// with no record are absent from the result, which the target records
/// as "known deleted".
pub fn handle_priority_pull(
    master: &MasterService,
    table: TableId,
    hashes: &[KeyHash],
) -> (Vec<Record>, Work) {
    let mut work = Work::default();
    let records = master.gather_hashes(table, hashes, &mut work);
    (records, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::key_hash;
    use rocksteady_master::MasterConfig;

    const T: TableId = TableId(1);

    fn loaded_source(n: u64) -> MasterService {
        let mut m = MasterService::new(MasterConfig::default());
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        for i in 0..n {
            let key = format!("user{i:06}");
            m.load_object(T, key.as_bytes(), &[0u8; 100]);
        }
        m
    }

    #[test]
    fn prepare_locks_the_tablet() {
        let mut m = loaded_source(10);
        let ceiling = handle_prepare(&mut m, T, HashRange::full(), ServerId(2)).unwrap();
        assert!(ceiling > 10);
        // Clients are now turned away.
        let mut w = Work::default();
        let err = m
            .read(T, key_hash(b"user000001"), None, &mut w)
            .unwrap_err();
        assert_eq!(err, rocksteady_master::OpError::UnknownTablet);
        // A second prepare with a wrong range fails.
        assert!(handle_prepare(&mut m, T, HashRange { start: 0, end: 9 }, ServerId(2)).is_none());
    }

    #[test]
    fn pull_partitions_cover_everything_once() {
        let m = loaded_source(500);
        let mut seen = std::collections::HashSet::new();
        for range in HashRange::full().split(8) {
            let mut cursor = ScanCursor::default();
            loop {
                let (records, next, work) = handle_pull(&m, T, range, cursor, 2_000);
                assert!(work.probes > 0 || records.is_empty());
                for r in records {
                    assert!(range.contains(r.key_hash), "leak across partitions");
                    assert!(seen.insert(r.key_hash), "duplicate {:#x}", r.key_hash);
                }
                match next {
                    Some(c) => cursor = c,
                    None => break,
                }
            }
        }
        assert_eq!(seen.len(), 500);
    }

    #[test]
    fn pull_respects_byte_budget_approximately() {
        let m = loaded_source(2_000);
        let (records, next, _) =
            handle_pull(&m, T, HashRange::full(), ScanCursor::default(), 20_000);
        assert!(next.is_some());
        let bytes: u64 = records.iter().map(|r| r.wire_size()).sum();
        // Batches may overshoot by at most one bucket's worth.
        assert!((20_000..30_000).contains(&bytes), "batch of {bytes} bytes");
    }

    #[test]
    fn priority_pull_fetches_exactly_requested() {
        let m = loaded_source(50);
        let h1 = key_hash(b"user000003");
        let h2 = key_hash(b"user000017");
        let ghost = key_hash(b"no-such-key");
        let (records, work) = handle_priority_pull(&m, T, &[h1, ghost, h2]);
        assert_eq!(records.len(), 2);
        // The ghost key's bucket may be empty (0 probes), but both live
        // keys cost at least one probe each.
        assert!(work.probes >= 2);
        let hashes: Vec<_> = records.iter().map(|r| r.key_hash).collect();
        assert!(hashes.contains(&h1) && hashes.contains(&h2));
    }
}
