//! The target-side migration manager (§3.1.2).
//!
//! The source keeps no migration state, so a manager on the target
//! coordinates everything: it partitions the source's key-hash space,
//! scoreboards one Pull per partition, hands completed pulls to idle
//! workers for replay, runs the PriorityPull batcher, and decides when
//! the migration is complete.
//!
//! In RAMCloud the manager runs as an asynchronous continuation on the
//! dispatch core; here it is a pure state machine — the server actor
//! reports events (`on_*`) and then asks [`MigrationManager::poll`] what
//! to do next, executing the returned [`Action`]s (sending RPCs,
//! scheduling replay tasks on idle workers). Two properties of the
//! paper's design fall directly out of `poll`:
//!
//! - **Pipelining**: when a partition's pulled records are handed to a
//!   replay worker, the next Pull for that partition is issued in the
//!   same breath, so network round trips overlap source-side processing
//!   (§3.1.2).
//! - **Built-in flow control**: replay is only scheduled onto *idle*
//!   workers, and a partition with an unconsumed response never issues
//!   another Pull — if the target is busy serving clients, migration
//!   slows itself down instead of queueing unboundedly (§3.1.2).

use rocksteady_common::{HashRange, KeyHash, Nanos, ScanCursor, ServerId, TableId};
use rocksteady_proto::Record;

use crate::config::MigrationConfig;
use crate::priority::{MissOutcome, PriorityPullBatcher};

/// A batch of records ready to be replayed on an idle worker.
#[derive(Debug, Clone)]
pub struct ReplayBatch {
    /// Which pull partition produced it (`None` for PriorityPull
    /// records).
    pub partition: Option<usize>,
    /// The records.
    pub records: Vec<Record>,
    /// PriorityPull records replay ahead of bulk records (§3.3 — a
    /// client is actively waiting on them).
    pub urgent: bool,
}

/// What the server actor should do next.
#[derive(Debug, Clone)]
pub enum Action {
    /// Send `PrepareMigration` to the source.
    SendPrepare,
    /// Tell the coordinator ownership moved and register the lineage
    /// dependency on this target's log from `lineage_from_segment`
    /// (§3.4).
    NotifyStart {
        /// First segment id of the target log tail the source depends on.
        lineage_from_segment: u64,
    },
    /// Issue a Pull RPC for `partition` resuming at `cursor`.
    SendPull {
        /// Partition index (identifies the scoreboard slot).
        partition: usize,
        /// Resume cursor within the partition.
        cursor: ScanCursor,
    },
    /// Issue a PriorityPull RPC for these hashes.
    SendPriorityPull {
        /// De-duplicated key hashes.
        hashes: Vec<KeyHash>,
    },
    /// Replay this batch on an idle worker.
    Replay(ReplayBatch),
    /// Everything has arrived and been replayed: commit side logs,
    /// re-replicate them lazily, tell the coordinator to drop the
    /// lineage dependency (§3.4), and mark the tablet a normal owner.
    Finished,
}

/// Migration lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Waiting for the source to acknowledge `PrepareMigration`.
    Preparing,
    /// Waiting for the coordinator to record the ownership transfer.
    Registering,
    /// Pulls and replays in flight.
    Running,
    /// All data arrived and replayed; `Finished` has been emitted.
    Done,
}

impl MigrationPhase {
    /// Trace-span label for the phase that *ends* when this one begins
    /// (the server emits a phase span at each transition).
    pub fn name(self) -> &'static str {
        match self {
            MigrationPhase::Preparing => "mig:preparing",
            MigrationPhase::Registering => "mig:prepare",
            MigrationPhase::Running => "mig:ownership-flip",
            MigrationPhase::Done => "mig:run",
        }
    }
}

/// Running statistics for one migration.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrationStats {
    /// Bulk Pull RPCs issued.
    pub pulls_sent: u64,
    /// Records received via bulk Pulls.
    pub pull_records: u64,
    /// Wire bytes received via bulk Pulls.
    pub pull_bytes: u64,
    /// PriorityPull RPCs issued.
    pub priority_pulls_sent: u64,
    /// Records received via PriorityPulls.
    pub priority_records: u64,
    /// Virtual time the migration started (set by the server).
    pub started_at: Nanos,
    /// Virtual time the migration finished (set by the server).
    pub finished_at: Nanos,
}

#[derive(Debug)]
struct Partition {
    range: HashRange,
    /// Resume point for the next Pull; `None` once exhausted.
    cursor: Option<ScanCursor>,
    /// A Pull RPC is outstanding.
    in_flight: bool,
    /// Completed pull response waiting for an idle worker.
    ready: Option<Vec<Record>>,
    /// Replay tasks currently executing on workers.
    replays_running: u32,
    /// First pull not yet issued.
    never_pulled: bool,
}

impl Partition {
    fn exhausted(&self) -> bool {
        self.cursor.is_none() && !self.never_pulled
    }

    fn done(&self) -> bool {
        self.exhausted() && !self.in_flight && self.ready.is_none() && self.replays_running == 0
    }
}

/// The migration manager itself.
#[derive(Debug)]
pub struct MigrationManager {
    /// Table being migrated.
    pub table: TableId,
    /// Tablet range being migrated.
    pub range: HashRange,
    /// Where the records are coming from.
    pub source: ServerId,
    /// Protocol knobs.
    pub config: MigrationConfig,
    /// Running statistics.
    pub stats: MigrationStats,
    phase: MigrationPhase,
    partitions: Vec<Partition>,
    /// PriorityPull responses waiting for a worker (replayed urgently).
    pp_ready: Vec<Vec<Record>>,
    batcher: PriorityPullBatcher,
    lineage_from_segment: u64,
}

impl MigrationManager {
    /// Creates a manager for migrating `(table, range)` from `source`.
    ///
    /// `lineage_from_segment` is the target's current log head segment id
    /// — everything the target writes during the migration lands at or
    /// after it, which is exactly the log tail the lineage dependency
    /// must cover (§3.4).
    pub fn new(
        table: TableId,
        range: HashRange,
        source: ServerId,
        lineage_from_segment: u64,
        config: MigrationConfig,
    ) -> Self {
        let partitions = range
            .split(config.partitions)
            .into_iter()
            .map(|range| {
                let empty = range.is_empty();
                Partition {
                    range,
                    cursor: if empty {
                        None
                    } else {
                        Some(ScanCursor::default())
                    },
                    in_flight: false,
                    ready: None,
                    replays_running: 0,
                    never_pulled: !empty,
                }
            })
            .collect();
        MigrationManager {
            table,
            range,
            source,
            config,
            stats: MigrationStats::default(),
            phase: MigrationPhase::Preparing,
            partitions,
            pp_ready: Vec::new(),
            batcher: PriorityPullBatcher::new(),
            lineage_from_segment,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> MigrationPhase {
        self.phase
    }

    /// Kick off: returns the `PrepareMigration` action.
    pub fn begin(&mut self) -> Action {
        Action::SendPrepare
    }

    /// The source acknowledged `PrepareMigration`; returns the
    /// coordinator notification (ownership + lineage registration).
    pub fn on_prepared(&mut self) -> Action {
        debug_assert_eq!(self.phase, MigrationPhase::Preparing);
        self.phase = MigrationPhase::Registering;
        Action::NotifyStart {
            lineage_from_segment: self.lineage_from_segment,
        }
    }

    /// The coordinator recorded the transfer; pulls may start. Call
    /// [`MigrationManager::poll`] next.
    pub fn on_registered(&mut self) {
        debug_assert_eq!(self.phase, MigrationPhase::Registering);
        self.phase = MigrationPhase::Running;
    }

    /// A Pull for `partition` returned `records` and the resume cursor.
    pub fn on_pull_response(
        &mut self,
        partition: usize,
        records: Vec<Record>,
        next: Option<ScanCursor>,
        wire_bytes: u64,
    ) {
        let p = &mut self.partitions[partition];
        debug_assert!(p.in_flight);
        p.in_flight = false;
        p.cursor = next;
        self.stats.pull_records += records.len() as u64;
        self.stats.pull_bytes += wire_bytes;
        if records.is_empty() {
            // Nothing to replay (empty tail of the partition).
            debug_assert!(next.is_none(), "pulls only return empty at exhaustion");
        } else {
            debug_assert!(p.ready.is_none(), "flow control violated");
            p.ready = Some(records);
        }
    }

    /// A PriorityPull returned; `requested` is the batch that was sent.
    pub fn on_priority_pull_response(&mut self, requested: &[KeyHash], records: Vec<Record>) {
        self.batcher.on_response(records.iter().map(|r| r.key_hash));
        let _ = requested; // the batcher already tracked the in-flight set
        self.stats.priority_records += records.len() as u64;
        if !records.is_empty() {
            self.pp_ready.push(records);
        }
    }

    /// A replay task finished on a worker.
    pub fn on_replay_done(&mut self, partition: Option<usize>) {
        if let Some(i) = partition {
            let p = &mut self.partitions[i];
            debug_assert!(p.replays_running > 0);
            p.replays_running -= 1;
        }
    }

    /// A client read missed a record this target owns (§3.3). Decides
    /// between "retry later" and "not found", queueing a PriorityPull
    /// when enabled.
    pub fn on_read_miss(&mut self, hash: KeyHash) -> MissOutcome {
        // If the partition holding this hash has fully arrived and
        // replayed, a miss is authoritative: the key doesn't exist.
        if let Some(p) = self.partitions.iter().find(|p| p.range.contains(hash)) {
            if p.done() && self.pp_ready.is_empty() {
                return MissOutcome::NotFound;
            }
        }
        if self.phase == MigrationPhase::Done {
            return MissOutcome::NotFound;
        }
        if !self.config.priority_pulls || self.config.sync_priority_pulls {
            // Without (async) PriorityPulls the client just waits for the
            // bulk pulls (Figure 9b); in sync mode the server issues its
            // own blocking fetch.
            return MissOutcome::Wait;
        }
        self.batcher.on_miss(hash)
    }

    /// Whether every partition is drained and nothing is outstanding.
    fn complete(&self) -> bool {
        self.phase == MigrationPhase::Running
            && self.partitions.iter().all(Partition::done)
            && self.pp_ready.is_empty()
            && self.batcher.is_idle()
    }

    /// Asks the manager what to do next, given `idle_workers` workers
    /// with nothing better to do. Returns RPCs to send and replay tasks
    /// to schedule; emits [`Action::Finished`] exactly once, when the
    /// migration has fully drained.
    pub fn poll(&mut self, mut idle_workers: usize) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.phase != MigrationPhase::Running {
            return actions;
        }

        // Initial pulls: one per partition, all at once (§3.1.2).
        for (i, p) in self.partitions.iter_mut().enumerate() {
            if p.never_pulled && self.config.background_pulls {
                p.never_pulled = false;
                if let Some(cursor) = p.cursor {
                    p.in_flight = true;
                    self.stats.pulls_sent += 1;
                    actions.push(Action::SendPull {
                        partition: i,
                        cursor,
                    });
                }
            }
        }

        // PriorityPull batch (one outstanding at a time, §3.3).
        if self.config.priority_pulls && !self.config.sync_priority_pulls {
            if let Some(hashes) = self.batcher.next_batch(self.config.priority_pull_batch) {
                self.stats.priority_pulls_sent += 1;
                actions.push(Action::SendPriorityPull { hashes });
            }
        }

        // Replay scheduling: urgent PriorityPull records first, then bulk
        // partitions; each scheduled bulk batch immediately pipelines the
        // partition's next Pull (§3.1.2).
        while idle_workers > 0 {
            if let Some(records) = self.pp_ready.pop() {
                idle_workers -= 1;
                actions.push(Action::Replay(ReplayBatch {
                    partition: None,
                    records,
                    urgent: true,
                }));
                continue;
            }
            let Some(i) = self.partitions.iter().position(|p| p.ready.is_some()) else {
                break;
            };
            let p = &mut self.partitions[i];
            let records = p.ready.take().expect("position() said ready");
            p.replays_running += 1;
            idle_workers -= 1;
            actions.push(Action::Replay(ReplayBatch {
                partition: Some(i),
                records,
                urgent: false,
            }));
            if let Some(cursor) = p.cursor {
                if !p.in_flight {
                    p.in_flight = true;
                    self.stats.pulls_sent += 1;
                    actions.push(Action::SendPull {
                        partition: i,
                        cursor,
                    });
                }
            }
        }

        if self.complete() {
            self.phase = MigrationPhase::Done;
            actions.push(Action::Finished);
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    const T: TableId = TableId(1);
    const SRC: ServerId = ServerId(1);

    fn rec(hash: KeyHash) -> Record {
        Record {
            table: T,
            key_hash: hash,
            version: 1,
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"v"),
            tombstone: false,
        }
    }

    fn running_manager(partitions: usize) -> MigrationManager {
        let mut m = MigrationManager::new(
            T,
            HashRange::full(),
            SRC,
            5,
            MigrationConfig {
                partitions,
                ..MigrationConfig::default()
            },
        );
        assert!(matches!(m.begin(), Action::SendPrepare));
        match m.on_prepared() {
            Action::NotifyStart {
                lineage_from_segment,
            } => assert_eq!(lineage_from_segment, 5),
            other => panic!("unexpected action {other:?}"),
        }
        m.on_registered();
        m
    }

    fn pulls_of(actions: &[Action]) -> Vec<usize> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::SendPull { partition, .. } => Some(*partition),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_poll_issues_one_pull_per_partition() {
        let mut m = running_manager(8);
        let actions = m.poll(4);
        assert_eq!(pulls_of(&actions), (0..8).collect::<Vec<_>>());
        assert_eq!(m.stats.pulls_sent, 8);
        // Re-polling issues nothing new while pulls are in flight.
        assert!(m.poll(4).is_empty());
    }

    #[test]
    fn replay_goes_to_idle_workers_and_pipelines_next_pull() {
        let mut m = running_manager(2);
        m.poll(0);
        m.on_pull_response(0, vec![rec(1)], Some(ScanCursor { bucket: 9 }), 100);
        // No idle workers: the response sits ready, no new pull (flow
        // control, §3.1.2).
        assert!(m.poll(0).is_empty());
        // A worker frees up: replay scheduled AND the next pull issued.
        let actions = m.poll(1);
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[0],
            Action::Replay(ReplayBatch {
                partition: Some(0),
                urgent: false,
                ..
            })
        ));
        match &actions[1] {
            Action::SendPull { partition, cursor } => {
                assert_eq!(*partition, 0);
                assert_eq!(cursor.bucket, 9);
            }
            other => panic!("expected pipelined pull, got {other:?}"),
        }
    }

    #[test]
    fn completes_only_after_replays_finish() {
        let mut m = running_manager(1);
        m.poll(0);
        m.on_pull_response(0, vec![rec(1), rec(2)], None, 200);
        let actions = m.poll(4);
        assert_eq!(
            actions.len(),
            1,
            "no Finished while replay runs: {actions:?}"
        );
        assert!(matches!(actions[0], Action::Replay(_)));
        assert!(m.poll(4).is_empty());
        m.on_replay_done(Some(0));
        let actions = m.poll(4);
        assert!(matches!(actions[..], [Action::Finished]));
        assert_eq!(m.phase(), MigrationPhase::Done);
        // Finished fires exactly once.
        assert!(m.poll(4).is_empty());
    }

    #[test]
    fn empty_tablet_finishes_immediately() {
        let mut m = running_manager(4);
        for (i, a) in m.poll(0).into_iter().enumerate() {
            match a {
                Action::SendPull { partition, .. } => assert_eq!(partition, i),
                other => panic!("{other:?}"),
            }
        }
        for i in 0..4 {
            m.on_pull_response(i, Vec::new(), None, 0);
        }
        let actions = m.poll(2);
        assert!(matches!(actions[..], [Action::Finished]));
    }

    #[test]
    fn priority_pull_roundtrip_and_urgent_replay() {
        let mut m = running_manager(1);
        m.poll(0);
        assert_eq!(m.on_read_miss(42), MissOutcome::Wait);
        assert_eq!(m.on_read_miss(42), MissOutcome::Wait);
        let actions = m.poll(0);
        match &actions[..] {
            [Action::SendPriorityPull { hashes }] => assert_eq!(hashes, &vec![42]),
            other => panic!("{other:?}"),
        }
        m.on_priority_pull_response(&[42], vec![rec(42)]);
        let actions = m.poll(1);
        assert!(matches!(
            &actions[0],
            Action::Replay(ReplayBatch {
                partition: None,
                urgent: true,
                ..
            })
        ));
        assert_eq!(m.stats.priority_records, 1);
    }

    #[test]
    fn urgent_replay_preempts_bulk_when_one_worker() {
        let mut m = running_manager(1);
        m.poll(0);
        m.on_pull_response(0, vec![rec(1)], Some(ScanCursor { bucket: 3 }), 100);
        m.on_read_miss(42);
        let actions = m.poll(0);
        assert!(matches!(&actions[..], [Action::SendPriorityPull { .. }]));
        m.on_priority_pull_response(&[42], vec![rec(42)]);
        let actions = m.poll(1);
        // The single worker must take the PriorityPull records first.
        match &actions[0] {
            Action::Replay(b) => assert!(b.urgent),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn miss_after_partition_done_is_not_found() {
        let mut m = running_manager(1);
        m.poll(0);
        m.on_pull_response(0, vec![rec(1)], None, 100);
        assert_eq!(
            m.on_read_miss(77),
            MissOutcome::Wait,
            "replay still pending"
        );
        let _ = m.poll(1);
        m.on_replay_done(Some(0));
        let _ = m.poll(1); // emits Finished
        assert_eq!(m.on_read_miss(77), MissOutcome::NotFound);
    }

    #[test]
    fn no_priority_pull_mode_never_sends_pp() {
        let mut m = MigrationManager::new(
            T,
            HashRange::full(),
            SRC,
            0,
            MigrationConfig {
                partitions: 1,
                priority_pulls: false,
                ..MigrationConfig::default()
            },
        );
        m.begin();
        m.on_prepared();
        m.on_registered();
        m.poll(0);
        assert_eq!(m.on_read_miss(5), MissOutcome::Wait);
        let actions = m.poll(2);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, Action::SendPriorityPull { .. })),
            "{actions:?}"
        );
        assert_eq!(m.stats.priority_pulls_sent, 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = running_manager(2);
        m.poll(1);
        m.on_pull_response(0, vec![rec(1), rec(2)], None, 250);
        m.on_pull_response(1, vec![rec(3)], None, 130);
        let _ = m.poll(2);
        assert_eq!(m.stats.pull_records, 3);
        assert_eq!(m.stats.pull_bytes, 380);
        assert_eq!(m.stats.pulls_sent, 2);
    }
}
