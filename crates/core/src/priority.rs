//! Asynchronous, batched, de-duplicated PriorityPulls (§3.3).
//!
//! When a client reads a key the target owns but hasn't received yet, the
//! target must fetch it from the source *now* — but naïvely issuing one
//! synchronous RPC per miss would stall worker cores, duplicate requests
//! for hot keys, and delay source load reduction. The batcher implements
//! the paper's solution:
//!
//! - misses **accumulate** while one PriorityPull is in flight; the next
//!   batch is issued when the current one completes;
//! - **de-duplication** guarantees the source never serves a key more
//!   than once after migration starts — a hash in flight or already
//!   pending is dropped;
//! - hashes the source returns nothing for are remembered as **absent**
//!   so repeated reads of missing keys become `NotFound` instead of an
//!   endless retry loop.

use std::collections::HashSet;

use rocksteady_common::KeyHash;

/// What the server should tell a client whose read missed (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissOutcome {
    /// Tell the client to retry after a short back-off; the record is on
    /// its way (a PriorityPull was batched, is in flight, or the bulk
    /// pulls will deliver it).
    Wait,
    /// The key is known not to exist.
    NotFound,
}

/// The target-side PriorityPull state machine.
#[derive(Debug, Default)]
pub struct PriorityPullBatcher {
    /// Hashes requested by clients, waiting to be sent.
    pending: Vec<KeyHash>,
    /// Membership mirror of `pending` for O(1) de-dup.
    pending_set: HashSet<KeyHash>,
    /// Hashes in the currently-in-flight PriorityPull.
    in_flight: HashSet<KeyHash>,
    /// Hashes the source answered with no record (deleted/never existed).
    absent: HashSet<KeyHash>,
    /// Hashes whose record has come back and is being (or has been)
    /// replayed: a re-miss in the response->replay window must NOT
    /// re-request — "the source never serves a request for a key more
    /// than once after migration starts" (§3.3).
    served_set: HashSet<KeyHash>,
    /// Unique records priority-pulled (statistics).
    served: u64,
}

impl PriorityPullBatcher {
    /// Creates an empty batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a client miss on `hash`.
    ///
    /// Returns what to tell the client, and internally queues the hash
    /// for the next batch unless it is already pending, in flight, or
    /// known-absent — "de-duplication ensures that PriorityPulls never
    /// request the same key hash from the source twice" (§3.3).
    pub fn on_miss(&mut self, hash: KeyHash) -> MissOutcome {
        if self.absent.contains(&hash) {
            return MissOutcome::NotFound;
        }
        if !self.in_flight.contains(&hash)
            && !self.served_set.contains(&hash)
            && self.pending_set.insert(hash)
        {
            self.pending.push(hash);
        }
        MissOutcome::Wait
    }

    /// Takes the next batch to send (up to `max` hashes), if no
    /// PriorityPull is currently in flight — the paper keeps exactly one
    /// outstanding, accumulating new hashes meanwhile (§3.3).
    pub fn next_batch(&mut self, max: usize) -> Option<Vec<KeyHash>> {
        if !self.in_flight.is_empty() || self.pending.is_empty() {
            return None;
        }
        let take = self.pending.len().min(max);
        let batch: Vec<KeyHash> = self.pending.drain(..take).collect();
        for h in &batch {
            self.pending_set.remove(h);
            self.in_flight.insert(*h);
        }
        Some(batch)
    }

    /// Processes the response to the in-flight batch: `returned` is the
    /// set of hashes the source had records for. Hashes it did not return
    /// are recorded as absent.
    pub fn on_response(&mut self, returned: impl IntoIterator<Item = KeyHash>) {
        let returned: HashSet<KeyHash> = returned.into_iter().collect();
        for h in self.in_flight.drain() {
            if returned.contains(&h) {
                self.served += 1;
                self.served_set.insert(h);
            } else {
                self.absent.insert(h);
            }
        }
    }

    /// Whether nothing is pending or in flight (a completion condition
    /// for the whole migration).
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.in_flight.is_empty()
    }

    /// Unique records served through PriorityPulls so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Number of hashes currently known absent.
    pub fn absent_count(&self) -> usize {
        self.absent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_batches_and_dedups() {
        let mut b = PriorityPullBatcher::new();
        assert_eq!(b.on_miss(1), MissOutcome::Wait);
        assert_eq!(b.on_miss(2), MissOutcome::Wait);
        assert_eq!(b.on_miss(1), MissOutcome::Wait, "duplicate miss");
        let batch = b.next_batch(16).unwrap();
        assert_eq!(batch, vec![1, 2], "dedup kept one copy of hash 1");
    }

    #[test]
    fn only_one_batch_in_flight() {
        let mut b = PriorityPullBatcher::new();
        b.on_miss(1);
        let first = b.next_batch(16).unwrap();
        assert_eq!(first, vec![1]);
        // New misses accumulate while in flight...
        b.on_miss(2);
        b.on_miss(3);
        assert!(b.next_batch(16).is_none(), "one outstanding at a time");
        // ...and a miss on the in-flight hash is NOT re-queued.
        b.on_miss(1);
        b.on_response(vec![1]);
        let second = b.next_batch(16).unwrap();
        assert_eq!(second, vec![2, 3], "hash 1 never requested twice");
    }

    #[test]
    fn batch_size_capped() {
        let mut b = PriorityPullBatcher::new();
        for h in 0..40u64 {
            b.on_miss(h);
        }
        let batch = b.next_batch(16).unwrap();
        assert_eq!(batch.len(), 16);
        b.on_response(batch);
        assert_eq!(b.next_batch(16).unwrap().len(), 16);
    }

    #[test]
    fn served_hashes_are_never_re_requested() {
        // §3.3's strongest claim: the source serves each key at most
        // once. A re-miss in the response->replay window must not
        // produce a second request.
        let mut b = PriorityPullBatcher::new();
        b.on_miss(9);
        let batch = b.next_batch(16).unwrap();
        b.on_response(batch);
        // The record is back but not yet replayed; a racing read misses.
        assert_eq!(b.on_miss(9), MissOutcome::Wait);
        assert!(b.next_batch(16).is_none(), "hash 9 requested twice");
        assert!(b.is_idle());
    }

    #[test]
    fn missing_records_become_not_found() {
        let mut b = PriorityPullBatcher::new();
        b.on_miss(7);
        b.on_miss(8);
        let batch = b.next_batch(16).unwrap();
        assert_eq!(batch.len(), 2);
        // Source only has hash 7; 8 was deleted.
        b.on_response(vec![7]);
        assert_eq!(b.on_miss(8), MissOutcome::NotFound);
        assert_eq!(
            b.on_miss(7),
            MissOutcome::Wait,
            "7 may simply be racing replay"
        );
        assert_eq!(b.served(), 1);
        assert_eq!(b.absent_count(), 1);
    }

    #[test]
    fn idle_tracking() {
        let mut b = PriorityPullBatcher::new();
        assert!(b.is_idle());
        b.on_miss(1);
        assert!(!b.is_idle());
        let batch = b.next_batch(16).unwrap();
        assert!(!b.is_idle());
        b.on_response(batch);
        assert!(b.is_idle());
    }
}
