//! Migration protocol knobs.

use rocksteady_common::Nanos;

/// Configuration of one Rocksteady migration (defaults are the paper's
/// evaluation settings, §4.1).
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Number of disjoint source hash-space partitions, each with one
    /// Pull outstanding (§3.1.1). "A small constant factor more
    /// partitions than worker cores is sufficient"; the paper uses 8.
    pub partitions: usize,
    /// Bytes of records each Pull returns (§3.1.1; the paper uses 20 KB —
    /// small enough to keep source workers' tasks short, large enough to
    /// amortize RPC dispatch).
    pub pull_budget_bytes: u32,
    /// Maximum records per PriorityPull batch (§4.1 uses 16).
    pub priority_pull_batch: usize,
    /// Whether PriorityPulls are issued at all (`false` reproduces the
    /// Figure 9b/10b "No Priority Pulls" variant).
    pub priority_pulls: bool,
    /// Use the naïve synchronous single-key PriorityPull instead of the
    /// asynchronous batched one (the Figure 13b/14b comparison).
    pub sync_priority_pulls: bool,
    /// Issue bulk background Pulls at all. Figures 13/14 study
    /// PriorityPulls in isolation by disabling them.
    pub background_pulls: bool,
    /// Base back-off the target suggests to clients whose record hasn't
    /// arrived ("retry after randomly waiting a few tens of
    /// microseconds", §3); the server adds random jitter up to this
    /// amount again.
    pub retry_after_ns: Nanos,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            partitions: 8,
            pull_budget_bytes: 20_000,
            priority_pull_batch: 16,
            priority_pulls: true,
            sync_priority_pulls: false,
            background_pulls: true,
            retry_after_ns: 30_000,
        }
    }
}
