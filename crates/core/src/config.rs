//! Migration protocol knobs.

use rocksteady_common::Nanos;

/// Configuration of one Rocksteady migration (defaults are the paper's
/// evaluation settings, §4.1).
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Number of disjoint source hash-space partitions, each with one
    /// Pull outstanding (§3.1.1). "A small constant factor more
    /// partitions than worker cores is sufficient"; the paper uses 8.
    pub partitions: usize,
    /// Bytes of records each Pull returns (§3.1.1; the paper uses 20 KB —
    /// small enough to keep source workers' tasks short, large enough to
    /// amortize RPC dispatch).
    pub pull_budget_bytes: u32,
    /// Maximum records per PriorityPull batch (§4.1 uses 16).
    pub priority_pull_batch: usize,
    /// Whether PriorityPulls are issued at all (`false` reproduces the
    /// Figure 9b/10b "No Priority Pulls" variant).
    pub priority_pulls: bool,
    /// Use the naïve synchronous single-key PriorityPull instead of the
    /// asynchronous batched one (the Figure 13b/14b comparison).
    pub sync_priority_pulls: bool,
    /// Issue bulk background Pulls at all. Figures 13/14 study
    /// PriorityPulls in isolation by disabling them.
    pub background_pulls: bool,
    /// Base back-off the target suggests to clients whose record hasn't
    /// arrived ("retry after randomly waiting a few tens of
    /// microseconds", §3); the server adds random jitter up to this
    /// amount again.
    pub retry_after_ns: Nanos,
    /// Test-only fault injection: when set, a source answering
    /// `PrepareMigration` returns its version ceiling but *skips* the
    /// ownership flip to `MigratingOutTo`, so it keeps serving the range
    /// past the dual-serving window. Exists solely to prove the protocol
    /// auditor detects a split brain; never set outside tests.
    #[doc(hidden)]
    pub test_skip_source_flip: bool,
    /// Test-only fault injection: the source silently drops every
    /// `Pull` and `PriorityPull` request (never responds), so gather
    /// makes no progress and the migration hangs in flight. Exists
    /// solely to prove the flight recorder's stall detector fires;
    /// never set outside tests.
    #[doc(hidden)]
    pub test_drop_pulls: bool,
    /// Test-only fault injection: the target accepts pulled batches but
    /// never schedules replay for them, so records pile up between
    /// gather and replay. Exists solely to prove the flight recorder's
    /// replay-backlog detector fires; never set outside tests.
    #[doc(hidden)]
    pub test_defer_replay: bool,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            partitions: 8,
            pull_budget_bytes: 20_000,
            priority_pull_batch: 16,
            priority_pulls: true,
            sync_priority_pulls: false,
            background_pulls: true,
            retry_after_ns: 30_000,
            test_skip_source_flip: false,
            test_drop_pulls: false,
            test_defer_replay: false,
        }
    }
}

/// Why a server is asking the client to come back later. Each cause
/// maps to a distinct base hint; keeping the mapping here (rather than
/// scattered through the server) is what guarantees every retry path
/// hints consistently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryCause {
    /// Read missed a not-yet-migrated record and a PriorityPull is on
    /// its way: "retry after the time when the target expects it will
    /// have the value" (§3) — one PriorityPull round trip.
    MissPriorityPull,
    /// Read missed but PriorityPulls are disabled (Figure 9b/10b): the
    /// record only arrives with the bulk pulls, so the hint is
    /// correspondingly longer.
    MissBulkOnly,
    /// The range is mid crash-recovery; replaying the replicated log
    /// takes several pull round trips.
    Recovering,
    /// A peer the operation depended on just died; back off while the
    /// coordinator's recovery plan lands.
    SourceFailover,
}

impl MigrationConfig {
    /// Base retry hint for `cause`, before jitter. The server draws
    /// jitter uniformly in `[0, base/2)` and sends `base + jitter`, so
    /// the hint lands in `[base, 1.5·base)` — synchronized clients
    /// spread out without doubling the documented mean.
    pub fn retry_base(&self, cause: RetryCause) -> Nanos {
        match cause {
            RetryCause::MissPriorityPull => self.retry_after_ns,
            RetryCause::MissBulkOnly => self.retry_after_ns * 20,
            RetryCause::Recovering => self.retry_after_ns * 4,
            RetryCause::SourceFailover => self.retry_after_ns,
        }
    }
}
