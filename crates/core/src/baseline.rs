//! RAMCloud's pre-existing, source-driven migration (§2.3) — the
//! baseline Rocksteady is measured against.
//!
//! The source sequentially scans its in-memory log, copies values that
//! belong to the migrating tablet into staging buffers, and ships them to
//! the target, which logically replays them into its own log and
//! re-replicates them. Ownership transfers only at the *end*. Figure 5
//! dissects this pipeline with four levers, all implemented here via
//! [`BaselineOpts`]:
//!
//! | lever | effect |
//! |---|---|
//! | (full) | scan + copy + tx + replay + re-replication |
//! | `skip_rereplication` | target replays but does not replicate |
//! | `skip_replay` | target acks without replaying |
//! | `skip_tx` | source scans + copies, never transmits |
//! | `skip_copy` | source only identifies migrating objects |
//!
//! Because the source retains ownership, it keeps serving writes during
//! the scan; the scan is followed by catch-up passes over the log tail,
//! a brief seal (writes rejected), a final pass, and then the ownership
//! transfer — the "delta catch-up" structure of classical live migration
//! (Albatross et al., which §6 cites as the family this mechanism
//! belongs to).

use std::collections::HashSet;

use bytes::Bytes;
use rocksteady_common::{HashRange, ServerId, TableId};
use rocksteady_logstore::EntryKind;
use rocksteady_master::{MasterService, TabletRole, Work};
use rocksteady_proto::msg::BaselineOpts;
use rocksteady_proto::Record;

/// What the source server should do after one scan step.
#[derive(Debug)]
pub enum BaselineAction {
    /// Send this batch to the target (empty when a lever suppressed the
    /// build/tx), then run the next step when appropriate.
    SendBatch {
        /// Records to push (empty under `skip_copy`/`skip_tx`).
        records: Vec<Record>,
        /// Whether the caller must wait for the target's ack before the
        /// next step (windowed transfer; the full protocol uses 1
        /// outstanding batch).
        await_ack: bool,
        /// Migrating-record bytes this step processed, whether or not
        /// they were shipped — the Figure 5 rate metric under the
        /// skip levers.
        scanned_bytes: u64,
    },
    /// Scanning is complete; transfer ownership to the target via the
    /// coordinator (full protocol only — lever variants just stop).
    TransferOwnership,
    /// The migration is entirely done.
    Done,
}

/// Phase of the baseline scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Main pass + catch-up passes while writes continue.
    Scanning,
    /// Writes rejected; finishing the final delta.
    Sealed,
    /// Ownership transfer requested.
    Transferring,
    /// Finished.
    Done,
}

/// Source-side state machine for one baseline migration.
#[derive(Debug)]
pub struct BaselineMigration {
    /// Table being migrated.
    pub table: TableId,
    /// Range being migrated.
    pub range: HashRange,
    /// Destination server.
    pub target: ServerId,
    /// Phase levers (Figure 5).
    pub opts: BaselineOpts,
    /// Batch size in record bytes (matches the Pull budget for
    /// comparability).
    pub batch_bytes: u64,
    phase: Phase,
    /// Fully-scanned segment ids.
    scanned: HashSet<u64>,
    /// Current position: segment id + entry offset.
    pos: Option<(u64, u32)>,
    /// Per-segment scan bounds captured at seal time: entries beyond
    /// these were appended after the seal and cannot belong to the
    /// (now immutable) migrating range.
    seal_bounds: Option<Vec<(u64, usize)>>,
    /// Total records identified as migrating (statistics).
    pub records_identified: u64,
    /// Total record bytes shipped (statistics).
    pub bytes_shipped: u64,
}

impl BaselineMigration {
    /// Starts a baseline migration on the source. Marks the tablet
    /// `BaselineSourceTo` (still serving clients, §2.3).
    pub fn new(
        master: &mut MasterService,
        table: TableId,
        range: HashRange,
        target: ServerId,
        opts: BaselineOpts,
        batch_bytes: u64,
    ) -> Option<Self> {
        if !master.set_tablet_role(table, range, TabletRole::BaselineSourceTo { target }) {
            return None;
        }
        Some(BaselineMigration {
            table,
            range,
            target,
            opts,
            batch_bytes,
            phase: Phase::Scanning,
            scanned: HashSet::new(),
            pos: None,
            seal_bounds: None,
            records_identified: 0,
            bytes_shipped: 0,
        })
    }

    /// Whether the migration has fully completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether any Figure 5 lever is active (measurement-only run).
    fn lever_active(&self) -> bool {
        self.opts.skip_copy
            || self.opts.skip_tx
            || self.opts.skip_replay
            || self.opts.skip_rereplication
    }

    /// Runs one scan step on a worker: walks the log from the current
    /// position, gathering up to `batch_bytes` of matching records.
    /// Returns the next action and the work performed (the server
    /// charges it as a Background task).
    pub fn step(&mut self, master: &mut MasterService) -> (BaselineAction, Work) {
        let mut work = Work::default();
        match self.phase {
            Phase::Transferring | Phase::Done => return (BaselineAction::Done, work),
            Phase::Scanning | Phase::Sealed => {}
        }

        let mut records = Vec::new();
        let mut batch_bytes = 0u64;
        let segments = master.log.segments_snapshot();

        'segments: for seg in &segments {
            if self.scanned.contains(&seg.id()) {
                continue;
            }
            // Bound the scan: up to the seal snapshot if sealed, else up
            // to what is committed right now.
            let bound = match &self.seal_bounds {
                Some(bounds) => bounds
                    .iter()
                    .find(|(id, _)| *id == seg.id())
                    .map(|(_, b)| *b)
                    .unwrap_or(0),
                None => seg.committed(),
            };
            let mut offset = match self.pos {
                Some((id, off)) if id == seg.id() => off,
                _ => 0,
            };
            while (offset as usize) < bound {
                let Ok((view, len)) = seg.entry_at(offset) else {
                    break;
                };
                work.scanned_entries += 1;
                let matches = view.table_id == self.table.0
                    && self.range.contains(view.key_hash)
                    && view.kind != EntryKind::SideLogCommit;
                if matches {
                    self.records_identified += 1;
                    if !self.opts.skip_copy {
                        let rec = Record {
                            table: self.table,
                            key_hash: view.key_hash,
                            version: view.version,
                            key: Bytes::copy_from_slice(view.key),
                            value: Bytes::copy_from_slice(view.value),
                            tombstone: view.kind == EntryKind::Tombstone,
                        };
                        let wire = rec.wire_size();
                        // Staging copy into transmit buffers (§2.3: the
                        // copy costs more than the transmission itself).
                        work.copied_bytes += wire;
                        work.checksummed_bytes += wire;
                        batch_bytes += wire;
                        records.push(rec);
                    } else {
                        batch_bytes += view.serialized_len() as u64;
                    }
                }
                offset += len as u32;
                if batch_bytes >= self.batch_bytes {
                    self.pos = Some((seg.id(), offset));
                    break 'segments;
                }
            }
            // Segment consumed up to its bound.
            if seg.is_closed() || self.seal_bounds.is_some() {
                self.scanned.insert(seg.id());
                self.pos = None;
            } else {
                // Open head scanned to its current committed length;
                // remember where to resume the catch-up.
                self.pos = Some((seg.id(), offset));
            }
        }

        if batch_bytes > 0 {
            self.bytes_shipped += if self.opts.skip_copy || self.opts.skip_tx {
                0
            } else {
                batch_bytes
            };
            let send = !self.opts.skip_copy && !self.opts.skip_tx;
            return (
                BaselineAction::SendBatch {
                    records: if send { records } else { Vec::new() },
                    await_ack: send,
                    scanned_bytes: batch_bytes,
                },
                work,
            );
        }

        // Nothing new found: either seal now, or finish.
        if self.lever_active() && self.phase == Phase::Scanning {
            // Figure 5 lever variants are measurement-only: they never
            // seal the tablet or transfer ownership (several are unsafe
            // by construction, §2.3).
            self.phase = Phase::Done;
            master.set_tablet_role(self.table, self.range, TabletRole::Owner);
            return (BaselineAction::Done, work);
        }
        match self.phase {
            Phase::Scanning => {
                // Freeze the range (writes now rejected) and capture the
                // final bounds; one more pass drains the delta.
                master.set_tablet_role(
                    self.table,
                    self.range,
                    TabletRole::MigratingOutTo {
                        target: self.target,
                    },
                );
                self.seal_bounds = Some(
                    master
                        .log
                        .segments_snapshot()
                        .iter()
                        .map(|s| (s.id(), s.committed()))
                        .collect(),
                );
                self.phase = Phase::Sealed;
                // Immediately try the final pass.
                let (action, mut extra) = self.step(master);
                extra.add(&work);
                (action, extra)
            }
            Phase::Sealed => {
                self.phase = Phase::Transferring;
                (BaselineAction::TransferOwnership, work)
            }
            Phase::Transferring | Phase::Done => (BaselineAction::Done, work),
        }
    }

    /// The coordinator acknowledged the ownership transfer.
    pub fn on_ownership_transferred(&mut self, master: &mut MasterService) {
        self.phase = Phase::Done;
        master.drop_tablet(self.table, self.range);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocksteady_common::key_hash;
    use rocksteady_master::{MasterConfig, ReplayDest};

    const T: TableId = TableId(1);

    fn source_with(n: u64) -> MasterService {
        let mut m = MasterService::new(MasterConfig {
            log: rocksteady_logstore::LogConfig {
                segment_bytes: 4096,
                max_segments: None,
            },
            ..MasterConfig::default()
        });
        m.add_tablet(T, HashRange::full(), TabletRole::Owner);
        for i in 0..n {
            let key = format!("user{i:06}");
            m.load_object(T, key.as_bytes(), &[7u8; 100]);
        }
        m
    }

    fn drain(
        mig: &mut BaselineMigration,
        src: &mut MasterService,
        mut on_batch: impl FnMut(Vec<Record>),
    ) {
        for _ in 0..100_000 {
            let (action, _work) = mig.step(src);
            match action {
                BaselineAction::SendBatch { records, .. } => on_batch(records),
                BaselineAction::TransferOwnership => {
                    mig.on_ownership_transferred(src);
                    return;
                }
                BaselineAction::Done => return,
            }
        }
        panic!("baseline migration did not converge");
    }

    #[test]
    fn full_scan_ships_everything_and_transfers() {
        let mut src = source_with(300);
        let mut mig = BaselineMigration::new(
            &mut src,
            T,
            HashRange::full(),
            ServerId(2),
            BaselineOpts::default(),
            20_000,
        )
        .unwrap();
        let mut tgt = MasterService::new(MasterConfig::default());
        tgt.add_tablet(T, HashRange::full(), TabletRole::Owner);
        drain(&mut mig, &mut src, |records| {
            for r in records {
                tgt.replay_record(&r, ReplayDest::MainLog, &mut Work::default());
            }
        });
        assert!(mig.is_done());
        assert_eq!(mig.records_identified, 300);
        // Target serves every record.
        for i in 0..300u64 {
            let key = format!("user{i:06}");
            let (value, _) = tgt
                .read(
                    T,
                    key_hash(key.as_bytes()),
                    Some(key.as_bytes()),
                    &mut Work::default(),
                )
                .unwrap();
            assert_eq!(&value[..], &[7u8; 100]);
        }
        // Source dropped the tablet.
        assert!(src.tablet_covering(T, key_hash(b"user000000")).is_none());
    }

    #[test]
    fn writes_during_scan_are_caught_up() {
        let mut src = source_with(100);
        let mut mig = BaselineMigration::new(
            &mut src,
            T,
            HashRange::full(),
            ServerId(2),
            BaselineOpts::default(),
            2_000,
        )
        .unwrap();
        let mut tgt = MasterService::new(MasterConfig::default());
        tgt.add_tablet(T, HashRange::full(), TabletRole::Owner);
        let mut batches = 0;
        let mut wrote_midway = false;
        for _ in 0..100_000 {
            let (action, _) = mig.step(&mut src);
            match action {
                BaselineAction::SendBatch { records, .. } => {
                    batches += 1;
                    for r in records {
                        tgt.replay_record(&r, ReplayDest::MainLog, &mut Work::default());
                    }
                    if batches == 2 && !wrote_midway {
                        // Concurrent client write during the scan.
                        wrote_midway = true;
                        src.write(
                            T,
                            key_hash(b"user000001"),
                            b"user000001",
                            b"updated-mid-scan",
                            &mut Work::default(),
                        )
                        .unwrap();
                    }
                }
                BaselineAction::TransferOwnership => {
                    mig.on_ownership_transferred(&mut src);
                    break;
                }
                BaselineAction::Done => break,
            }
        }
        assert!(wrote_midway, "test never exercised the catch-up path");
        let (value, _) = tgt
            .read(
                T,
                key_hash(b"user000001"),
                Some(b"user000001"),
                &mut Work::default(),
            )
            .unwrap();
        assert_eq!(&value[..], b"updated-mid-scan");
    }

    #[test]
    fn seal_rejects_writes() {
        let mut src = source_with(10);
        let mut mig = BaselineMigration::new(
            &mut src,
            T,
            HashRange::full(),
            ServerId(2),
            BaselineOpts::default(),
            1 << 20,
        )
        .unwrap();
        // One big batch, then the seal + final pass happen.
        loop {
            let (action, _) = mig.step(&mut src);
            match action {
                BaselineAction::SendBatch { .. } => continue,
                BaselineAction::TransferOwnership => break,
                BaselineAction::Done => break,
            }
        }
        let err = src
            .write(T, key_hash(b"late"), b"late", b"v", &mut Work::default())
            .unwrap_err();
        assert_eq!(err, rocksteady_master::OpError::UnknownTablet);
    }

    #[test]
    fn skip_copy_identifies_without_building() {
        let mut src = source_with(200);
        let mut mig = BaselineMigration::new(
            &mut src,
            T,
            HashRange::full(),
            ServerId(2),
            BaselineOpts {
                skip_copy: true,
                ..BaselineOpts::default()
            },
            20_000,
        )
        .unwrap();
        let mut saw_records = false;
        drain(&mut mig, &mut src, |records| {
            saw_records |= !records.is_empty();
        });
        assert!(!saw_records, "skip_copy must not build records");
        assert_eq!(mig.records_identified, 200);
        assert_eq!(mig.bytes_shipped, 0);
    }

    #[test]
    fn only_matching_range_is_shipped() {
        let mut src = source_with(200);
        // Migrate only the upper half of the hash space.
        let upper = HashRange {
            start: u64::MAX / 2 + 1,
            end: u64::MAX,
        };
        let mid = u64::MAX / 2 + 1;
        src.split_tablet(T, mid).unwrap();
        let mut mig = BaselineMigration::new(
            &mut src,
            T,
            upper,
            ServerId(2),
            BaselineOpts::default(),
            20_000,
        )
        .unwrap();
        let mut shipped = Vec::new();
        drain(&mut mig, &mut src, |records| shipped.extend(records));
        assert!(!shipped.is_empty());
        for r in &shipped {
            assert!(upper.contains(r.key_hash));
        }
        // Lower half still served by the source.
        let mut found_lower = false;
        for i in 0..200u64 {
            let key = format!("user{i:06}");
            let h = key_hash(key.as_bytes());
            if !upper.contains(h) {
                src.read(T, h, Some(key.as_bytes()), &mut Work::default())
                    .unwrap();
                found_lower = true;
            }
        }
        assert!(found_lower);
    }
}
