//! Rocksteady: fast live migration for low-latency in-memory storage.
//!
//! This crate is the paper's primary contribution (Kulkarni et al.,
//! SOSP '17, §3): a migration protocol for RAMCloud-style in-memory
//! key-value stores that is
//!
//! - **target-driven**: the target pulls records, so the (likely
//!   overloaded) source keeps *no* migration state and sheds load from
//!   the very first moment;
//! - **immediate**: tablet ownership transfers at migration *start*;
//!   writes are serviced by the target right away, and reads of
//!   not-yet-arrived records trigger batched, de-duplicated
//!   [`PriorityPull`](priority::PriorityPullBatcher)s (§3.3);
//! - **parallel and pipelined**: the source's key-hash space is split
//!   into disjoint partitions with one scoreboarded Pull outstanding
//!   each (§3.1.1–§3.1.2), and completed pulls are replayed on any idle
//!   worker core into per-core side logs (§3.1.3);
//! - **replication-free on the fast path**: instead of synchronously
//!   re-replicating migrated data, the source takes a lineage dependency
//!   on the target's recovery-log tail, registered at the coordinator,
//!   and side logs are re-replicated lazily at commit (§3.4).
//!
//! The protocol logic is pure state machinery ([`manager::
//! MigrationManager`] emits [`manager::Action`]s); the simulated server
//! actor executes the actions (sends RPCs, schedules replay on idle
//! workers), which keeps every protocol decision unit-testable without a
//! cluster.
//!
//! The crate also implements the **baselines** the paper measures
//! against: RAMCloud's pre-existing source-driven migration with the
//! Figure 5 phase levers ([`baseline`]), the no-PriorityPull and
//! synchronous-PriorityPull variants (config flags), and
//! source-retains-ownership (baseline with replay + synchronous
//! re-replication, §4.2c).

pub mod baseline;
pub mod config;
pub mod manager;
pub mod priority;
pub mod source;

pub use baseline::{BaselineAction, BaselineMigration};
pub use config::{MigrationConfig, RetryCause};
pub use manager::{Action, MigrationManager, MigrationPhase, MigrationStats, ReplayBatch};
pub use priority::{MissOutcome, PriorityPullBatcher};
