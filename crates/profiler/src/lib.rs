#![deny(missing_docs)]
//! Exact virtual-time profiling for the Rocksteady reproduction.
//!
//! The paper's headline claims are *attribution* claims: Fig 5
//! decomposes migration throughput into the cores and components that
//! bound it, and §4.4 argues that a core blocked on replication flush
//! is as costly as a busy one. A sampling profiler on real hardware can
//! only approximate that decomposition; under the simulator's virtual
//! clock we can make it exact. This crate provides three analyses:
//!
//! 1. **Per-core activity ledger** ([`Profiler`] / [`CoreLedger`]):
//!    every dispatch and worker core charges elapsed virtual time to a
//!    small [`Activity`] enum at the existing task-assignment and
//!    completion points in the server actor. The ledger maintains a
//!    *conservation invariant* — per core, the activity buckets
//!    (including idle) sum exactly to elapsed virtual time — so a
//!    dropped charge is a validation failure, not a silent skew. The
//!    result exports as Brendan-Gregg folded stacks
//!    (`server;core;activity N_ns`) ready for `flamegraph.pl`, and as
//!    gauges in the metrics registry.
//! 2. **Migration critical path** ([`critical_path`]): walks the trace
//!    buffer after a run and tiles the migration interval into the
//!    component that bounded completion at each instant — replay
//!    service, pull RTT (split into NIC serialization vs. the rest),
//!    priority pulls, control phases, or dispatch queueing — returning
//!    a ranked [`CriticalPathReport`].
//! 3. **Tail-latency blame** ([`tail_blame`]): aggregates the per-RPC
//!    net/queue/service/hold decomposition instants into a blame
//!    histogram over requests that exceeded the SLA.
//!
//! Determinism: all inputs are virtual-time integers recorded by the
//! deterministic simulation, state lives in `BTreeMap`s, and exports
//! format integers only — same seed, byte-identical output. Arming the
//! profiler must never perturb the simulation: charging is pure state
//! mutation (no timers, sends, or RNG draws), and a disarmed
//! [`Profiler`] is a `None` whose every call is a discriminant branch.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use rocksteady_common::Nanos;
use rocksteady_metrics::Registry;

mod blame;
mod critical_path;

pub use blame::{tail_blame, TailBlameReport, BLAME_SEGMENTS};
pub use critical_path::{critical_path, CriticalPathComponent, CriticalPathReport};

/// What a core spends its time on. One bucket per variant in each
/// core's ledger; [`Activity::Idle`] is the slack that makes the
/// conservation invariant hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Activity {
    /// Dispatch core: receiving + demultiplexing one inbound message.
    DispatchRx,
    /// Dispatch core: serializing outbound messages onto the NIC queue.
    DispatchTx,
    /// Dispatch core: migration-manager poll (window checks, pull
    /// scheduling, re-replication bookkeeping).
    MigrationMgr,
    /// Worker core: normal-case read/write/index service.
    Service,
    /// Worker core on the source: gathering records for a bulk Pull.
    PullGather,
    /// Worker core on the source: servicing an on-demand priority pull.
    PriorityPull,
    /// Worker core on the target: replaying pulled or recovered log
    /// records into the hash table.
    Replay,
    /// Worker core blocked on a replication flush while holding a
    /// completed response (§4.4: a blocked core is a busy core).
    Hold,
    /// Worker core: background duty — replication appends on backups,
    /// segment fetch service, log cleaning, non-replay record pushes.
    Background,
    /// Nothing scheduled.
    Idle,
}

impl Activity {
    /// Number of activity buckets.
    pub const COUNT: usize = 10;

    /// Every activity, in ledger-bucket order.
    pub const ALL: [Activity; Activity::COUNT] = [
        Activity::DispatchRx,
        Activity::DispatchTx,
        Activity::MigrationMgr,
        Activity::Service,
        Activity::PullGather,
        Activity::PriorityPull,
        Activity::Replay,
        Activity::Hold,
        Activity::Background,
        Activity::Idle,
    ];

    /// Stable kebab-case label used in folded stacks, CSV rows, and
    /// metric labels.
    pub fn label(self) -> &'static str {
        match self {
            Activity::DispatchRx => "dispatch-rx",
            Activity::DispatchTx => "dispatch-tx",
            Activity::MigrationMgr => "migration-mgr",
            Activity::Service => "service",
            Activity::PullGather => "pull-gather",
            Activity::PriorityPull => "priority-pull",
            Activity::Replay => "replay",
            Activity::Hold => "hold",
            Activity::Background => "background",
            Activity::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        Activity::ALL
            .iter()
            .position(|a| *a == self)
            .expect("activity in ALL")
    }
}

/// The activity ledger of one core: a cursor through virtual time plus
/// one bucket per [`Activity`].
///
/// Conservation invariant: after [`CoreLedger::finalize`], the buckets
/// (idle included) sum exactly to the cursor — every elapsed nanosecond
/// is attributed exactly once. [`CoreLedger::charge`] preserves it by
/// construction (gaps auto-fill as idle, overlaps are diverted to the
/// overcommit tally); [`CoreLedger::charge_exact`] does not, which is
/// what lets the unit tests prove [`CoreLedger::validate`] catches a
/// deliberately dropped charge.
#[derive(Debug, Clone, Default)]
pub struct CoreLedger {
    cursor: Nanos,
    buckets: [Nanos; Activity::COUNT],
    overcommit_ns: Nanos,
    overcommit_events: u64,
}

impl CoreLedger {
    /// Charges `[start, start + dur)` to `act`. A gap since the last
    /// charge is filled as idle; any overlap with already-attributed
    /// time is counted as overcommit (the server model can double-book
    /// the dispatch core — see `node_dispatch_overcommit_total`) and
    /// excluded from the buckets so conservation still holds.
    pub fn charge(&mut self, act: Activity, start: Nanos, dur: Nanos) {
        let end = start + dur;
        if end <= self.cursor {
            if dur > 0 {
                self.overcommit_ns += dur;
                self.overcommit_events += 1;
            }
            return;
        }
        let (start, dur) = if start < self.cursor {
            self.overcommit_ns += self.cursor - start;
            self.overcommit_events += 1;
            (self.cursor, end - self.cursor)
        } else {
            (start, dur)
        };
        if start > self.cursor {
            self.buckets[Activity::Idle.index()] += start - self.cursor;
        }
        self.buckets[act.index()] += dur;
        self.cursor = end;
    }

    /// Low-level charge that requires the caller to tile time
    /// explicitly: no idle fill, no overlap handling. Misuse (a gap or
    /// overlap) breaks the conservation invariant, which
    /// [`CoreLedger::validate`] then reports — by design, so dropped
    /// charges surface as errors instead of silent skew.
    pub fn charge_exact(&mut self, act: Activity, start: Nanos, dur: Nanos) {
        self.buckets[act.index()] += dur;
        self.cursor = self.cursor.max(start + dur);
    }

    /// Fills idle up to `at` (no-op if the cursor is already past it).
    pub fn finalize(&mut self, at: Nanos) {
        if self.cursor < at {
            self.buckets[Activity::Idle.index()] += at - self.cursor;
            self.cursor = at;
        }
    }

    /// Elapsed virtual time accounted by this ledger.
    pub fn wall(&self) -> Nanos {
        self.cursor
    }

    /// Time charged to `act`.
    pub fn bucket(&self, act: Activity) -> Nanos {
        self.buckets[act.index()]
    }

    /// Sum of all non-idle buckets.
    pub fn busy_ns(&self) -> Nanos {
        self.cursor - self.bucket(Activity::Idle)
    }

    /// Time charged to [`Activity::Idle`].
    pub fn idle_ns(&self) -> Nanos {
        self.bucket(Activity::Idle)
    }

    /// Time that would have double-booked the core (diverted out of the
    /// buckets by [`CoreLedger::charge`]).
    pub fn overcommit_ns(&self) -> Nanos {
        self.overcommit_ns
    }

    /// Checks the conservation invariant: buckets (including idle) sum
    /// exactly to the cursor.
    pub fn validate(&self) -> Result<(), String> {
        let sum: Nanos = self.buckets.iter().sum();
        if sum == self.cursor {
            Ok(())
        } else {
            Err(format!(
                "conservation violated: buckets sum to {sum} ns but {} ns elapsed \
                 (a charge was dropped or double-applied)",
                self.cursor
            ))
        }
    }
}

/// One core's finalized ledger, flattened for figure pipelines.
#[derive(Debug, Clone)]
pub struct CoreProfile {
    /// Owning server id.
    pub server: u32,
    /// Core index: 0 = dispatch, `1 + w` = worker `w`.
    pub core: u32,
    /// Activity buckets in [`Activity::ALL`] order.
    pub buckets: [Nanos; Activity::COUNT],
    /// Elapsed virtual time (the buckets' sum when conservation holds).
    pub wall: Nanos,
    /// Double-booked time diverted from the buckets.
    pub overcommit_ns: Nanos,
}

/// Validation summary across all cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSummary {
    /// Number of registered cores.
    pub cores: usize,
    /// Largest per-core elapsed time.
    pub wall_ns: Nanos,
    /// Total non-idle time across cores.
    pub busy_ns: Nanos,
    /// Total idle time across cores.
    pub idle_ns: Nanos,
    /// Total double-booked time across cores.
    pub overcommit_ns: Nanos,
    /// Number of overlapping charges observed.
    pub overcommit_events: u64,
}

/// Human-readable label for a core index: `dispatch` or `worker{w}`.
pub fn core_label(core: u32) -> String {
    if core == 0 {
        "dispatch".to_string()
    } else {
        format!("worker{}", core - 1)
    }
}

#[derive(Debug, Default)]
struct LedgerBuf {
    cores: BTreeMap<(u32, u32), CoreLedger>,
}

/// Shared handle to the activity ledgers of every core in the cluster,
/// mirroring `rocksteady_trace::Tracer`: a disarmed profiler is `None`
/// and every call on it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Profiler(Option<Rc<RefCell<LedgerBuf>>>);

impl Profiler {
    /// A disarmed profiler: records nothing, costs one branch per call.
    pub fn off() -> Self {
        Profiler(None)
    }

    /// An armed profiler with an empty ledger.
    pub fn armed() -> Self {
        Profiler(Some(Rc::new(RefCell::new(LedgerBuf::default()))))
    }

    /// Whether charges are being recorded. Callers should guard any
    /// non-trivial bookkeeping behind this.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Registers a core so it appears in exports (as all-idle) even if
    /// it never runs a task.
    pub fn register_core(&self, server: u32, core: u32) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().cores.entry((server, core)).or_default();
        }
    }

    /// Charges `[start, start + dur)` on `(server, core)` to `act`.
    /// See [`CoreLedger::charge`] for gap/overlap semantics.
    pub fn charge(&self, server: u32, core: u32, act: Activity, start: Nanos, dur: Nanos) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut()
                .cores
                .entry((server, core))
                .or_default()
                .charge(act, start, dur);
        }
    }

    /// Fills idle on every registered core up to `at`. Call once the
    /// run is over, before validating or exporting.
    pub fn finalize(&self, at: Nanos) {
        if let Some(buf) = &self.0 {
            for ledger in buf.borrow_mut().cores.values_mut() {
                ledger.finalize(at);
            }
        }
    }

    /// Checks the conservation invariant on every core and returns a
    /// summary. `Err` names the first offending core.
    pub fn validate(&self) -> Result<ProfileSummary, String> {
        let Some(buf) = &self.0 else {
            return Ok(ProfileSummary {
                cores: 0,
                wall_ns: 0,
                busy_ns: 0,
                idle_ns: 0,
                overcommit_ns: 0,
                overcommit_events: 0,
            });
        };
        let buf = buf.borrow();
        let mut summary = ProfileSummary {
            cores: buf.cores.len(),
            wall_ns: 0,
            busy_ns: 0,
            idle_ns: 0,
            overcommit_ns: 0,
            overcommit_events: 0,
        };
        for ((server, core), ledger) in &buf.cores {
            ledger
                .validate()
                .map_err(|e| format!("server{server} {}: {e}", core_label(*core)))?;
            summary.wall_ns = summary.wall_ns.max(ledger.wall());
            summary.busy_ns += ledger.busy_ns();
            summary.idle_ns += ledger.idle_ns();
            summary.overcommit_ns += ledger.overcommit_ns;
            summary.overcommit_events += ledger.overcommit_events;
        }
        Ok(summary)
    }

    /// Flattens every core's ledger (deterministic order: by server,
    /// then core index).
    pub fn cores(&self) -> Vec<CoreProfile> {
        let Some(buf) = &self.0 else {
            return Vec::new();
        };
        buf.borrow()
            .cores
            .iter()
            .map(|((server, core), ledger)| CoreProfile {
                server: *server,
                core: *core,
                buckets: ledger.buckets,
                wall: ledger.cursor,
                overcommit_ns: ledger.overcommit_ns,
            })
            .collect()
    }

    /// Brendan-Gregg folded stacks: one `server;core;activity N_ns`
    /// line per non-empty bucket, ready for `flamegraph.pl`. Integer
    /// nanosecond sample weights; byte-identical across same-seed runs.
    pub fn export_folded(&self) -> String {
        let mut out = String::new();
        for core in self.cores() {
            for (act, ns) in Activity::ALL.iter().zip(core.buckets.iter()) {
                if *ns > 0 {
                    let _ = writeln!(
                        out,
                        "server{};{};{} {}",
                        core.server,
                        core_label(core.core),
                        act.label(),
                        ns
                    );
                }
            }
        }
        out
    }

    /// Publishes every non-empty bucket as a `profiler_activity_ns`
    /// gauge (labels: `server`, `core`, `activity`) in `registry`.
    /// Idempotent — gauges are set, not added.
    pub fn publish(&self, registry: &Registry) {
        for core in self.cores() {
            let server = core.server.to_string();
            let label = core_label(core.core);
            for (act, ns) in Activity::ALL.iter().zip(core.buckets.iter()) {
                if *ns > 0 {
                    registry
                        .gauge(
                            "profiler_activity_ns",
                            "virtual nanoseconds the core spent on the activity",
                            &[
                                ("server", server.clone()),
                                ("core", label.clone()),
                                ("activity", act.label().to_string()),
                            ],
                        )
                        .set(*ns as i64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_fills_gaps_as_idle_and_conserves() {
        let mut l = CoreLedger::default();
        l.charge(Activity::Service, 10, 5);
        l.charge(Activity::Replay, 30, 10);
        l.finalize(50);
        l.validate().expect("conservation holds");
        assert_eq!(l.bucket(Activity::Service), 5);
        assert_eq!(l.bucket(Activity::Replay), 10);
        assert_eq!(l.idle_ns(), 10 + 15 + 10);
        assert_eq!(l.wall(), 50);
        assert_eq!(l.busy_ns() + l.idle_ns(), l.wall());
    }

    #[test]
    fn overlapping_charges_count_as_overcommit_not_double_booking() {
        let mut l = CoreLedger::default();
        l.charge(Activity::DispatchRx, 0, 100);
        // Tx accrued off-dispatch at t=40 overlaps the scheduled rx
        // interval by 60 ns and extends it by 20.
        l.charge(Activity::DispatchTx, 40, 80);
        l.finalize(120);
        l.validate().expect("conservation holds");
        assert_eq!(l.overcommit_ns(), 60);
        assert_eq!(l.bucket(Activity::DispatchTx), 20);
        assert_eq!(l.wall(), 120);
        // A charge fully inside attributed time is pure overcommit.
        l.charge(Activity::DispatchTx, 10, 5);
        assert_eq!(l.overcommit_ns(), 65);
        l.validate().expect("conservation still holds");
    }

    #[test]
    fn dropped_charge_fails_validation() {
        // An instrumentation bug modeled with the exact API: the idle
        // gap [10, 20) is never charged, so 10 ns of wall-clock went
        // unattributed.
        let mut broken = CoreLedger::default();
        broken.charge_exact(Activity::Service, 0, 10);
        broken.charge_exact(Activity::Replay, 20, 5);
        let err = broken.validate().expect_err("dropped charge must fail");
        assert!(err.contains("conservation violated"), "{err}");

        // The same sequence through the gap-filling API conserves.
        let mut ok = CoreLedger::default();
        ok.charge(Activity::Service, 0, 10);
        ok.charge(Activity::Replay, 20, 5);
        ok.validate().expect("charge() conserves by construction");
    }

    #[test]
    fn profiler_validate_names_the_offending_core() {
        let p = Profiler::armed();
        p.register_core(3, 0);
        p.charge(3, 2, Activity::Replay, 0, 10);
        p.validate().expect("both cores conserve");
        // Corrupt worker 1's ledger via the exact API.
        if let Some(buf) = &p.0 {
            buf.borrow_mut()
                .cores
                .get_mut(&(3, 2))
                .unwrap()
                .charge_exact(Activity::Replay, 50, 5);
        }
        let err = p.validate().expect_err("gap must fail");
        assert!(err.contains("server3 worker1"), "{err}");
    }

    #[test]
    fn folded_export_is_sorted_and_skips_empty_buckets() {
        let p = Profiler::armed();
        p.register_core(1, 0);
        p.charge(0, 1, Activity::Service, 5, 10);
        p.charge(0, 0, Activity::DispatchRx, 0, 3);
        p.finalize(20);
        let folded = p.export_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "server0;dispatch;dispatch-rx 3",
                "server0;dispatch;idle 17",
                "server0;worker0;service 10",
                "server0;worker0;idle 10",
                "server1;dispatch;idle 20",
            ]
        );
    }

    #[test]
    fn disarmed_profiler_is_inert() {
        let p = Profiler::off();
        p.register_core(0, 0);
        p.charge(0, 0, Activity::Service, 0, 10);
        p.finalize(100);
        assert!(!p.is_on());
        assert!(p.cores().is_empty());
        assert_eq!(p.export_folded(), "");
        assert_eq!(p.validate().unwrap().cores, 0);
    }
}
