//! Tail-latency blame: which segment made the slow requests slow?
//!
//! Every server-side RPC already emits a decomposition instant
//! (`net_in + queue + service + hold = resp_sent - sent_at`, cat
//! `rpc`). For requests whose server-observed end-to-end time exceeded
//! the SLA, we aggregate those segments into a blame histogram: each
//! slow request blames its dominant segment, and per-segment totals
//! show where the tail's nanoseconds actually went. This is the
//! post-hoc companion to the live SLO monitor — the monitor says *that*
//! p99.9 breached; this says *why*.

use rocksteady_common::Nanos;
use rocksteady_trace::{Phase, TraceEvent};

/// The four server-side latency segments, in instant-arg order.
pub const BLAME_SEGMENTS: [&str; 4] = ["net", "queue", "service", "hold"];

/// Blame histogram over requests that exceeded the SLA.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailBlameReport {
    /// The SLA threshold applied (virtual ns, server-observed e2e).
    pub sla: Nanos,
    /// Server-side RPC decomposition instants examined.
    pub total_rpcs: u64,
    /// Requests over the SLA.
    pub slow_rpcs: u64,
    /// Slow requests whose dominant segment was each of
    /// [`BLAME_SEGMENTS`] (ties blame the earlier segment).
    pub blame_counts: [u64; 4],
    /// Per-segment nanoseconds summed over the slow requests.
    pub segment_ns: [Nanos; 4],
}

impl TailBlameReport {
    /// The segment blamed by the most slow requests, if any were slow.
    pub fn dominant(&self) -> Option<&'static str> {
        if self.slow_rpcs == 0 {
            return None;
        }
        let mut best = 0;
        for (i, c) in self.blame_counts.iter().enumerate() {
            if *c > self.blame_counts[best] {
                best = i;
            }
        }
        Some(BLAME_SEGMENTS[best])
    }

    /// Deterministic JSON export: fixed field order, integers only.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"sla_ns\":{},\"total_rpcs\":{},\"slow_rpcs\":{},\"segments\":[",
            self.sla, self.total_rpcs, self.slow_rpcs
        );
        for (i, name) in BLAME_SEGMENTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"blamed\":{},\"ns\":{}}}",
                name, self.blame_counts[i], self.segment_ns[i]
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Aggregates the per-RPC decomposition instants in `events` into a
/// blame histogram for requests whose server-observed end-to-end time
/// exceeded `sla`.
pub fn tail_blame(events: &[TraceEvent], sla: Nanos) -> TailBlameReport {
    let mut report = TailBlameReport {
        sla,
        ..TailBlameReport::default()
    };
    for ev in events {
        if ev.ph != Phase::Instant || ev.cat != "rpc" {
            continue;
        }
        // Server-side decomposition instants carry the four segments;
        // client-side `rpc-client` instants in the same category don't.
        let (Some(sent), Some(resp), Some(net), Some(queue), Some(service), Some(hold)) = (
            ev.arg("sent_at"),
            ev.arg("resp_sent"),
            ev.arg("net_in"),
            ev.arg("queue"),
            ev.arg("service"),
            ev.arg("hold"),
        ) else {
            continue;
        };
        report.total_rpcs += 1;
        if resp.saturating_sub(sent) <= sla {
            continue;
        }
        report.slow_rpcs += 1;
        let segments = [net, queue, service, hold];
        let mut dominant = 0;
        for (i, seg) in segments.iter().enumerate() {
            if *seg > segments[dominant] {
                dominant = i;
            }
        }
        report.blame_counts[dominant] += 1;
        for (total, seg) in report.segment_ns.iter_mut().zip(segments.iter()) {
            *total += *seg;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rpc_instant(sent: Nanos, segments: [Nanos; 4]) -> TraceEvent {
        let resp = sent + segments.iter().sum::<Nanos>();
        TraceEvent {
            name: "rpc",
            cat: "rpc",
            ph: Phase::Instant,
            ts: resp,
            dur: 0,
            pid: 1,
            tid: 0,
            args: vec![
                ("sent_at", sent),
                ("resp_sent", resp),
                ("net_in", segments[0]),
                ("queue", segments[1]),
                ("service", segments[2]),
                ("hold", segments[3]),
            ],
        }
    }

    #[test]
    fn slow_requests_blame_their_dominant_segment() {
        let events = vec![
            rpc_instant(0, [1, 1, 1, 0]),     // fast: ignored
            rpc_instant(10, [2, 50, 10, 0]),  // slow: queue
            rpc_instant(20, [2, 5, 10, 100]), // slow: hold
            rpc_instant(30, [2, 90, 10, 0]),  // slow: queue
        ];
        let report = tail_blame(&events, 20);
        assert_eq!(report.total_rpcs, 4);
        assert_eq!(report.slow_rpcs, 3);
        assert_eq!(report.blame_counts, [0, 2, 0, 1]);
        assert_eq!(report.segment_ns, [6, 145, 30, 100]);
        assert_eq!(report.dominant(), Some("queue"));
        let json = report.to_json();
        assert!(json.contains("\"slow_rpcs\":3"), "{json}");
        assert!(
            json.contains("{\"name\":\"queue\",\"blamed\":2,\"ns\":145}"),
            "{json}"
        );
    }

    #[test]
    fn no_slow_requests_means_no_blame() {
        let report = tail_blame(&[rpc_instant(0, [1, 1, 1, 0])], 1000);
        assert_eq!(report.slow_rpcs, 0);
        assert_eq!(report.dominant(), None);
    }
}
