//! Post-hoc critical-path analysis of a traced migration.
//!
//! Rocksteady is a pipeline: bulk pulls fetch records from the source
//! while target workers replay them, with priority pulls and control
//! phases threaded through. The question Fig 5 answers — *what bounds
//! migration completion?* — is, in trace terms: at each instant of the
//! migration interval, which in-flight component was on the blocking
//! chain? We tile `[start, finish]` of the `migration` span with a
//! priority sweep over the recorded spans (replay service dominates
//! in-flight pulls, which dominate priority pulls, which dominate
//! control phases); instants covered by nothing are dispatch queueing —
//! the target's dispatch core sat between a pull response arriving and
//! the next replay assignment. Pull-attributed time is further split
//! into NIC serialization vs. network + source gather using the
//! per-pull `resp_nic` stamps recorded from the kernel's departure
//! times. Components therefore partition the migration duration
//! exactly, and ranking them yields the blocking chain.

use rocksteady_common::Nanos;
use rocksteady_trace::{lanes, Phase, TraceEvent};

/// Sweep classes, in blocking priority order (lower wins a tie).
const CLASS_REPLAY: usize = 0;
const CLASS_PULL: usize = 1;
const CLASS_PRIORITY_PULL: usize = 2;
const CLASS_PREPARE: usize = 3;
const CLASS_FLIP: usize = 4;
/// Residual: nothing in flight — dispatch queueing on the target.
const CLASS_OTHER: usize = 5;
const N_CLASSES: usize = 6;

/// One ranked component of the migration's blocking chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPathComponent {
    /// Stable component name (e.g. `replay-service`, `pull-rtt`).
    pub name: &'static str,
    /// Virtual time this component bounded completion.
    pub ns: Nanos,
    /// `ns` as a share of the migration duration, in permille.
    pub permille: u64,
}

/// Ranked decomposition of a migration's duration into the components
/// that bounded its completion. Components partition the interval, so
/// their `ns` sum to [`CriticalPathReport::total_ns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// Trace pid (actor id) of the migration target.
    pub target_pid: u64,
    /// Migration start (virtual ns).
    pub started: Nanos,
    /// Migration completion (virtual ns).
    pub finished: Nanos,
    /// `finished - started`.
    pub total_ns: Nanos,
    /// Sum of component times (equals `total_ns`: the sweep tiles the
    /// interval).
    pub attributed_ns: Nanos,
    /// Components ranked by descending time (name breaks ties).
    pub components: Vec<CriticalPathComponent>,
}

impl CriticalPathReport {
    /// Share of the migration duration attributed to ranked components,
    /// in permille.
    pub fn coverage_permille(&self) -> u64 {
        (self.attributed_ns * 1000)
            .checked_div(self.total_ns)
            .unwrap_or(0)
    }

    /// Deterministic JSON export: fixed field order, integers only —
    /// byte-identical across same-seed runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"target_pid\":{},\"started_ns\":{},\"finished_ns\":{},\
             \"total_ns\":{},\"attributed_ns\":{},\"components\":[",
            self.target_pid, self.started, self.finished, self.total_ns, self.attributed_ns
        ));
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ns\":{},\"permille\":{}}}",
                c.name, c.ns, c.permille
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Walks the trace buffer and computes the blocking chain of the most
/// recent *completed* migration. Returns `None` if no migration span
/// was recorded (tracing off, or the migration was abandoned).
pub fn critical_path(events: &[TraceEvent]) -> Option<CriticalPathReport> {
    let mig = events
        .iter()
        .rev()
        .find(|e| e.ph == Phase::Span && e.name == "migration" && e.arg("abandoned").is_none())?;
    let (pid, t0, t1) = (mig.pid, mig.ts, mig.ts + mig.dur);
    if t1 <= t0 {
        return None;
    }

    // Clip every relevant span on the target actor to [t0, t1]. Lane
    // conventions come from `rocksteady_trace::lanes`, shared with the
    // server actor that recorded them.
    let mut intervals: Vec<(usize, Nanos, Nanos)> = Vec::new();
    let mut pull_dur_total: Nanos = 0;
    let mut pull_nic_total: Nanos = 0;
    for ev in events {
        if ev.pid != pid || ev.ph != Phase::Span {
            continue;
        }
        let class = match ev.name {
            "mig:replay" if lanes::worker_index(ev.tid).is_some() => CLASS_REPLAY,
            "mig:pull" if lanes::pull_partition(ev.tid).is_some() => {
                pull_dur_total += ev.dur;
                pull_nic_total += ev.arg("resp_nic").unwrap_or(0);
                CLASS_PULL
            }
            "mig:priority-pull" if ev.tid == lanes::PRIORITY_PULL => CLASS_PRIORITY_PULL,
            "mig:prepare" => CLASS_PREPARE,
            "mig:ownership-flip" => CLASS_FLIP,
            _ => continue,
        };
        let (s, e) = (ev.ts.max(t0), (ev.ts + ev.dur).min(t1));
        if e > s {
            intervals.push((class, s, e));
        }
    }

    // Priority sweep over elementary intervals between span boundaries.
    let mut bounds: Vec<Nanos> = Vec::with_capacity(2 * intervals.len() + 2);
    bounds.push(t0);
    bounds.push(t1);
    for (_, s, e) in &intervals {
        bounds.push(*s);
        bounds.push(*e);
    }
    bounds.sort_unstable();
    bounds.dedup();
    let mut totals = [0u64; N_CLASSES];
    for w in bounds.windows(2) {
        let (s, e) = (w[0], w[1]);
        let mut best = CLASS_OTHER;
        for (class, is, ie) in &intervals {
            if *is <= s && *ie >= e && *class < best {
                best = *class;
            }
        }
        totals[best] += e - s;
    }

    // Split pull-bound time into NIC serialization vs. the rest of the
    // RTT (network latency + source-side gather), proportionally to the
    // per-pull response serialization stamps.
    let pull = totals[CLASS_PULL];
    let pull_nic = (pull * pull_nic_total)
        .checked_div(pull_dur_total)
        .unwrap_or(0);
    let pull_rtt = pull - pull_nic;

    let raw = [
        ("replay-service", totals[CLASS_REPLAY]),
        ("pull-rtt", pull_rtt),
        ("pull-nic-serialization", pull_nic),
        ("priority-pull-rtt", totals[CLASS_PRIORITY_PULL]),
        ("prepare-control", totals[CLASS_PREPARE]),
        ("ownership-flip", totals[CLASS_FLIP]),
        ("dispatch-queueing", totals[CLASS_OTHER]),
    ];
    let total = t1 - t0;
    let mut components: Vec<CriticalPathComponent> = raw
        .iter()
        .filter(|(_, ns)| *ns > 0)
        .map(|(name, ns)| CriticalPathComponent {
            name,
            ns: *ns,
            permille: ns * 1000 / total,
        })
        .collect();
    components.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.name.cmp(b.name)));
    let attributed = components.iter().map(|c| c.ns).sum();

    Some(CriticalPathReport {
        target_pid: pid,
        started: t0,
        finished: t1,
        total_ns: total,
        attributed_ns: attributed,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, pid: u64, tid: u64, ts: Nanos, dur: Nanos) -> TraceEvent {
        TraceEvent {
            name,
            cat: "test",
            ph: Phase::Span,
            ts,
            dur,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    #[test]
    fn sweep_tiles_the_migration_interval() {
        let mut events = vec![
            span("mig:prepare", 2, lanes::MIGRATION, 0, 10),
            span("mig:pull", 2, lanes::pull(0), 10, 40),
            span("mig:replay", 2, lanes::worker(1), 30, 50),
            span("mig:pull", 2, lanes::pull(1), 80, 10),
        ];
        events.push(span("migration", 2, lanes::MIGRATION, 0, 100));
        let report = critical_path(&events).expect("migration present");
        assert_eq!(report.total_ns, 100);
        assert_eq!(report.attributed_ns, 100);
        assert_eq!(report.coverage_permille(), 1000);
        let ns = |name: &str| {
            report
                .components
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.ns)
        };
        // Replay wins [30, 80); pulls win [10, 30) and [80, 90);
        // prepare [0, 10); the tail [90, 100) is uncovered.
        assert_eq!(ns("replay-service"), 50);
        assert_eq!(ns("pull-rtt") + ns("pull-nic-serialization"), 30);
        assert_eq!(ns("prepare-control"), 10);
        assert_eq!(ns("dispatch-queueing"), 10);
        // Ranked descending.
        assert_eq!(report.components[0].name, "replay-service");
        // Deterministic JSON round-trips the ranking.
        let json = report.to_json();
        assert!(json.starts_with("{\"target_pid\":2,"), "{json}");
        assert!(json.contains("\"attributed_ns\":100"), "{json}");
    }

    #[test]
    fn nic_split_uses_departure_stamps() {
        let mut pull = span("mig:pull", 2, lanes::pull(0), 0, 100);
        pull.args.push(("resp_nic", 25));
        let events = vec![pull, span("migration", 2, lanes::MIGRATION, 0, 100)];
        let report = critical_path(&events).unwrap();
        let ns = |name: &str| {
            report
                .components
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.ns)
        };
        assert_eq!(ns("pull-nic-serialization"), 25);
        assert_eq!(ns("pull-rtt"), 75);
    }

    #[test]
    fn abandoned_migrations_are_ignored() {
        let mut abandoned = span("migration", 2, lanes::MIGRATION, 0, 50);
        abandoned.args.push(("abandoned", 1));
        assert!(critical_path(&[abandoned]).is_none());
        assert!(critical_path(&[]).is_none());
    }
}
